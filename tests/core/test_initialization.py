"""Tests for the classical initialisation strategies (HF, CAFQA, Red-QAOA)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ansatz import HardwareEfficientAnsatz, MultiAngleQAOAAnsatz, QAOAAnsatz, UCCSDAnsatz
from repro.core import VQATask
from repro.hamiltonians import (
    MolecularFamily,
    get_molecule,
    ieee14_graph,
    maxcut_minimization_hamiltonian,
    transverse_field_ising_chain,
)
from repro.initialization import (
    cafqa_search,
    clifford_energy,
    hartree_fock_energy,
    hartree_fock_state,
    pool_graph,
    red_qaoa_initialization,
)
from repro.quantum.exact import ground_state_energy
from repro.quantum.statevector import StatevectorSimulator


class TestHartreeFock:
    def test_state_and_energy(self):
        state = hartree_fock_state(4, 2)
        assert abs(state.data[int("1100", 2)]) == pytest.approx(1.0)
        family = MolecularFamily(get_molecule("H2"))
        task = VQATask("h2", family.hamiltonian(0.75), initial_bitstring="1100")
        energy = hartree_fock_energy(task, 2)
        # HF energy is an upper bound on the exact ground energy.
        assert energy >= task.exact_ground_energy() - 1e-9


class TestCAFQA:
    def test_clifford_energy_matches_statevector(self):
        ansatz = HardwareEfficientAnsatz(3, num_layers=1)
        operator = transverse_field_ising_chain(3, 1.0)
        parameters = np.array([0.0, np.pi / 2, np.pi, 0.0, 3 * np.pi / 2, 0.0] * 2)
        clifford_value = clifford_energy(ansatz, parameters, operator)
        exact = StatevectorSimulator().run(ansatz.bound_circuit(parameters)).expectation(operator)
        assert clifford_value == pytest.approx(exact, abs=1e-9)

    def test_search_improves_over_zero_point(self):
        operator = transverse_field_ising_chain(4, 0.6)
        ansatz = HardwareEfficientAnsatz(4, num_layers=1)
        result = cafqa_search(operator, ansatz, num_sweeps=1, seed=0)
        zero_energy = clifford_energy(ansatz, ansatz.zero_parameters(), operator)
        assert result.energy <= zero_energy + 1e-9
        assert result.num_evaluations > 0
        assert result.parameters.shape == (ansatz.num_parameters,)
        # All parameters stay on the Clifford grid.
        assert np.allclose(np.mod(result.parameters, np.pi / 2), 0.0)

    def test_initialization_fidelity(self):
        operator = transverse_field_ising_chain(3, 0.4)
        ansatz = HardwareEfficientAnsatz(3, num_layers=1)
        result = cafqa_search(operator, ansatz, num_sweeps=2, seed=1)
        fidelity = result.initialization_fidelity(ground_state_energy(operator))
        assert 0.0 < fidelity <= 1.0

    def test_rejects_scaled_parameter_ansatz(self):
        ansatz = UCCSDAnsatz(4, 2)
        operator = transverse_field_ising_chain(4, 1.0)
        with pytest.raises(ValueError):
            cafqa_search(operator, ansatz)

    def test_qubit_mismatch_rejected(self):
        with pytest.raises(ValueError):
            cafqa_search(transverse_field_ising_chain(3, 1.0), HardwareEfficientAnsatz(4))


class TestRedQAOA:
    def test_pool_graph_reduces_nodes(self):
        graph = ieee14_graph()
        pooled = pool_graph(graph, target_nodes=6)
        assert pooled.number_of_nodes() <= 6
        assert pooled.number_of_nodes() >= 2
        with pytest.raises(ValueError):
            pool_graph(graph, target_nodes=1)

    def test_initialization_broadcast_shapes(self):
        graph = ieee14_graph()
        initialization = red_qaoa_initialization(graph, num_layers=1, target_nodes=6, grid_points=5)
        cost = maxcut_minimization_hamiltonian(graph)
        standard = QAOAAnsatz(cost, num_layers=1)
        multi = MultiAngleQAOAAnsatz(cost, num_layers=1)
        assert initialization.broadcast(standard).shape == (2,)
        assert initialization.broadcast(multi).shape == (multi.num_parameters,)
        wrong_depth = QAOAAnsatz(cost, num_layers=2)
        with pytest.raises(ValueError):
            initialization.broadcast(wrong_depth)

    def test_initialization_beats_plus_state(self):
        graph = ieee14_graph()
        initialization = red_qaoa_initialization(graph, num_layers=1, target_nodes=7, grid_points=7)
        cost = maxcut_minimization_hamiltonian(graph)
        ansatz = QAOAAnsatz(cost, num_layers=1)
        simulator = StatevectorSimulator()
        initialized = simulator.expectation(
            ansatz.bound_circuit(initialization.broadcast(ansatz)), cost
        )
        plus_state = simulator.expectation(ansatz.bound_circuit(ansatz.zero_parameters()), cost)
        assert initialized < plus_state
