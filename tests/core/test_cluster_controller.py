"""Tests for VQACluster, TreeVQAController, the baseline and post-processing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ansatz import HardwareEfficientAnsatz
from repro.core import (
    IndependentVQABaseline,
    TreeVQAConfig,
    TreeVQAController,
    VQACluster,
    VQATask,
    select_best_states,
)
from repro.core.results import TreeVQAResult
from repro.hamiltonians import transverse_field_ising_chain


def make_cluster(tasks, ansatz, config, parameters=None):
    return VQACluster(
        cluster_id="test",
        tasks=tasks,
        ansatz=ansatz,
        optimizer=config.make_optimizer(),
        estimator=config.make_estimator(),
        config=config,
        initial_parameters=parameters if parameters is not None else ansatz.zero_parameters(),
    )


class TestVQACluster:
    def test_construction_validations(self, tfim_tasks, small_ansatz, fast_config):
        with pytest.raises(ValueError):
            make_cluster([], small_ansatz, fast_config)
        wrong_ansatz = HardwareEfficientAnsatz(3, num_layers=1)
        with pytest.raises(ValueError):
            make_cluster(tfim_tasks, wrong_ansatz, fast_config)
        mismatched = tfim_tasks + [
            VQATask("other", transverse_field_ising_chain(3, 1.0))
        ]
        with pytest.raises(ValueError):
            make_cluster(mismatched, small_ansatz, fast_config)
        mixed_init = [
            VQATask("a", transverse_field_ising_chain(4, 1.0), initial_bitstring="0000"),
            VQATask("b", transverse_field_ising_chain(4, 1.1), initial_bitstring="1111"),
        ]
        with pytest.raises(ValueError):
            make_cluster(mixed_init, small_ansatz, fast_config)
        with pytest.raises(ValueError):
            make_cluster(tfim_tasks, small_ansatz, fast_config, parameters=np.zeros(3))

    def test_mixed_hamiltonian_and_shot_cost(self, tfim_tasks, small_ansatz, fast_config):
        cluster = make_cluster(tfim_tasks, small_ansatz, fast_config)
        assert cluster.num_tasks == 3
        # TFIM terms are shared: 3 ZZ + 4 X = 7 non-identity terms.
        assert cluster.shots_per_evaluation() == 7 * fast_config.shots_per_pauli_term
        assert cluster.similarity is not None
        assert cluster.similarity.shape == (3, 3)

    def test_step_records_losses_and_shots(self, tfim_tasks, small_ansatz, fast_config):
        cluster = make_cluster(tfim_tasks, small_ansatz, fast_config)
        record = cluster.step()
        assert record.iteration == 1
        assert set(record.individual_losses) == {task.name for task in tfim_tasks}
        assert record.shots == 2 * cluster.shots_per_evaluation()
        assert cluster.iterations == 1
        assert cluster.monitor.iterations_recorded == 1
        # Mixed loss is the mean of individual losses.
        assert record.mixed_loss == pytest.approx(
            np.mean(list(record.individual_losses.values()))
        )

    def test_individual_losses_match_exact_expectation(self, tfim_tasks, small_ansatz, fast_config):
        # Individual losses are recombined from the term vectors the objective
        # evaluations measured — with an exact estimator they equal the same
        # weighted combination of the exact expectations at the evaluated
        # states, and their cluster mean is the optimizer's reported loss.
        cluster = make_cluster(tfim_tasks, small_ansatz, fast_config)
        record = cluster.step()
        assert record.evaluated_parameters is not None
        assert len(record.evaluated_parameters) == record.num_evaluations
        weights = record.recombination_weights
        assert weights is not None and weights.sum() == pytest.approx(1.0)
        assert record.mixed_loss == pytest.approx(record.optimizer_loss, abs=1e-9)
        states = [cluster.prepare_state(p) for p in record.evaluated_parameters]
        for task in tfim_tasks:
            expected = float(
                weights @ [state.expectation(task.hamiltonian) for state in states]
            )
            assert record.individual_losses[task.name] == pytest.approx(expected, abs=1e-9)

    def test_step_prepares_exactly_num_evaluations_states(
        self, tfim_tasks, small_ansatz, fast_config, monkeypatch
    ):
        # Regression: one cluster step used to re-simulate the shared state to
        # recombine individual energies; the engine path reuses the objective
        # evaluations, so exactly ``num_evaluations`` states are prepared.
        from repro.quantum.statevector import Statevector

        cluster = make_cluster(tfim_tasks, small_ansatz, fast_config)
        evolutions = 0
        original_evolve = Statevector.evolve

        def counting_evolve(self, circuit):
            nonlocal evolutions
            evolutions += 1
            return original_evolve(self, circuit)

        monkeypatch.setattr(Statevector, "evolve", counting_evolve)
        record = cluster.step()
        assert record.num_evaluations == cluster.optimizer.evaluations_per_step
        assert evolutions == record.num_evaluations

    def test_loss_decreases_over_iterations(self, tfim_tasks, small_ansatz, fast_config):
        cluster = make_cluster(
            tfim_tasks, small_ansatz, fast_config,
            parameters=np.random.default_rng(0).normal(0, 0.5, small_ansatz.num_parameters),
        )
        first = cluster.step().mixed_loss
        for _ in range(20):
            last = cluster.step().mixed_loss
        assert last < first

    def test_split_produces_partition_with_inherited_parameters(
        self, tfim_tasks, small_ansatz, fast_config
    ):
        cluster = make_cluster(tfim_tasks, small_ansatz, fast_config)
        cluster.step()
        children = cluster.split()
        assert cluster.retired
        assert len(children) == 2
        all_tasks = sorted(name for child in children for name in child.task_names)
        assert all_tasks == sorted(task.name for task in tfim_tasks)
        for child in children:
            np.testing.assert_allclose(child.parameters, cluster.parameters)
            assert child.level == cluster.level + 1
            assert child.cluster_id.startswith(cluster.cluster_id)
        with pytest.raises(RuntimeError):
            cluster.step()

    def test_singleton_cannot_split(self, tfim_tasks, small_ansatz, fast_config):
        cluster = make_cluster(tfim_tasks[:1], small_ansatz, fast_config)
        assert cluster.similarity is None
        assert not cluster.split_decision().should_split
        with pytest.raises(ValueError):
            cluster.split()

    def test_forced_split_decision(self, tfim_tasks, small_ansatz):
        config = TreeVQAConfig(
            max_rounds=10, warmup_iterations=0, window_size=2,
            forced_split_iteration=2, seed=0,
        )
        cluster = make_cluster(tfim_tasks, small_ansatz, config)
        cluster.step()
        assert not cluster.split_decision().should_split
        cluster.step()
        assert cluster.split_decision().should_split

    def test_disable_automatic_splits(self, tfim_tasks, small_ansatz):
        config = TreeVQAConfig(
            max_rounds=10, warmup_iterations=0, window_size=2,
            disable_automatic_splits=True, seed=0,
        )
        cluster = make_cluster(tfim_tasks, small_ansatz, config)
        for _ in range(5):
            cluster.step()
        assert not cluster.split_decision().should_split


class TestTreeVQAController:
    def test_input_validation(self, tfim_tasks, small_ansatz, fast_config):
        with pytest.raises(ValueError):
            TreeVQAController([], small_ansatz, fast_config)
        duplicated = [tfim_tasks[0], tfim_tasks[0]]
        with pytest.raises(ValueError):
            TreeVQAController(duplicated, small_ansatz, fast_config)
        with pytest.raises(ValueError):
            TreeVQAController(tfim_tasks, HardwareEfficientAnsatz(3), fast_config)

    def test_roots_grouped_by_initial_bitstring(self, small_ansatz, fast_config):
        tasks = [
            VQATask("a", transverse_field_ising_chain(4, 0.9), initial_bitstring="0000"),
            VQATask("b", transverse_field_ising_chain(4, 1.0), initial_bitstring="0000"),
            VQATask("c", transverse_field_ising_chain(4, 1.1), initial_bitstring="1111"),
        ]
        controller = TreeVQAController(tasks, small_ansatz, fast_config)
        assert len(controller.active_clusters) == 2
        sizes = sorted(cluster.num_tasks for cluster in controller.active_clusters)
        assert sizes == [1, 2]

    def test_run_produces_complete_result(self, tfim_tasks, small_ansatz, fast_config):
        controller = TreeVQAController(tfim_tasks, small_ansatz, fast_config)
        result = controller.run()
        assert isinstance(result, TreeVQAResult)
        assert len(result.outcomes) == 3
        assert result.total_shots > 0
        assert result.total_shots == result.ledger.total
        assert result.total_rounds == fast_config.max_rounds
        for outcome in result.outcomes:
            assert 0.0 <= outcome.fidelity <= 1.0
        for task in tfim_tasks:
            trajectory = result.trajectories[task.name]
            assert trajectory.num_samples > 0
            assert trajectory.cumulative_shots == sorted(trajectory.cumulative_shots)
        assert result.tree.num_nodes >= 1
        # Summary text renders without error.
        assert "tasks: 3" in result.summary()

    def test_run_only_once(self, tfim_tasks, small_ansatz, fast_config):
        controller = TreeVQAController(tfim_tasks, small_ansatz, fast_config)
        controller.run()
        with pytest.raises(RuntimeError):
            controller.run()

    def test_shot_budget_respected(self, tfim_tasks, small_ansatz):
        budget = 3_000_000
        config = TreeVQAConfig(
            max_rounds=500, max_total_shots=budget, warmup_iterations=3, window_size=3, seed=0
        )
        result = TreeVQAController(tfim_tasks, small_ansatz, config).run()
        per_round = 2 * 7 * config.shots_per_pauli_term
        assert result.total_shots < budget + 3 * per_round
        assert result.total_rounds < 500

    def test_splits_recorded_in_tree(self, tfim_tasks, small_ansatz):
        config = TreeVQAConfig(
            max_rounds=60, warmup_iterations=5, window_size=4, epsilon_split=5e-2, seed=1,
            optimizer_kwargs={"learning_rate": 0.3, "perturbation": 0.15},
        )
        result = TreeVQAController(tfim_tasks, small_ansatz, config).run()
        assert result.tree.num_splits >= 1
        assert result.tree.depth_levels() >= 2
        # Tree shot accounting matches the ledger.
        assert result.tree.total_shots() == result.total_shots

    def test_initial_parameters_dict_by_bitstring(self, small_ansatz, fast_config):
        tasks = [
            VQATask("a", transverse_field_ising_chain(4, 0.9), initial_bitstring="0000"),
            VQATask("b", transverse_field_ising_chain(4, 1.1), initial_bitstring="1111"),
        ]
        parameters = {"0000": np.full(small_ansatz.num_parameters, 0.1)}
        controller = TreeVQAController(
            tasks, small_ansatz, fast_config, initial_parameters=parameters
        )
        clusters = {c.task_names[0]: c for c in controller.active_clusters}
        np.testing.assert_allclose(clusters["a"].parameters, 0.1)
        np.testing.assert_allclose(clusters["b"].parameters, 0.0)


class TestBaselineAndPostprocess:
    def test_baseline_runs_each_task_independently(self, tfim_tasks, small_ansatz, fast_config):
        baseline = IndependentVQABaseline(tfim_tasks, small_ansatz, fast_config)
        result = baseline.run(iterations_per_task=10)
        assert len(result.outcomes) == 3
        # Each task charged 10 iterations × 2 evals × 7 terms × shots_per_term.
        expected_per_task = 10 * 2 * 7 * fast_config.shots_per_pauli_term
        for task in tfim_tasks:
            assert result.ledger.total_for(task.name) == expected_per_task
        assert result.total_shots == 3 * expected_per_task

    def test_baseline_trajectories_use_per_task_shots(self, tfim_tasks, small_ansatz, fast_config):
        result = IndependentVQABaseline(tfim_tasks, small_ansatz, fast_config).run(5)
        for trajectory in result.trajectories.values():
            assert trajectory.cumulative_shots[0] == 2 * 7 * fast_config.shots_per_pauli_term

    def test_baseline_budget_split_equally(self, tfim_tasks, small_ansatz):
        per_iteration = 2 * 7 * 4096
        config = TreeVQAConfig(max_rounds=100, max_total_shots=3 * 5 * per_iteration, seed=0)
        result = IndependentVQABaseline(tfim_tasks, small_ansatz, config).run()
        for task in tfim_tasks:
            assert result.ledger.total_for(task.name) <= 5 * per_iteration

    def test_treevqa_beats_or_matches_baseline_shots_at_matched_fidelity(
        self, small_suite
    ):
        """Integration: the paper's headline claim at miniature scale.

        Trajectories record the optimizer's per-step loss estimate (the engine
        refactor removed the extra per-step exact simulation), so the seed is
        chosen for a clear, stable margin under those semantics.
        """
        config = TreeVQAConfig(
            max_rounds=80, warmup_iterations=10, window_size=6, epsilon_split=2e-3,
            optimizer_kwargs={"learning_rate": 0.3, "perturbation": 0.15}, seed=7,
        )
        rng = np.random.default_rng(7)
        initial = rng.normal(0.0, 0.7, small_suite.ansatz.num_parameters)
        treevqa = TreeVQAController(
            small_suite.tasks, small_suite.ansatz, config, initial_parameters=initial
        ).run()
        baseline = IndependentVQABaseline(
            small_suite.tasks, small_suite.ansatz, config, initial_parameters=initial
        ).run(iterations_per_task=80)
        threshold = min(treevqa.max_reported_fidelity(), baseline.max_reported_fidelity()) - 0.01
        tree_shots = treevqa.shots_to_reach_fidelity(threshold)
        base_shots = baseline.shots_to_reach_fidelity(threshold)
        assert tree_shots is not None and base_shots is not None
        assert base_shots >= tree_shots

    def test_postprocess_selects_best_cluster(self, tfim_tasks, small_ansatz, fast_config):
        good = make_cluster(tfim_tasks, small_ansatz, fast_config)
        for _ in range(15):
            good.step()
        bad = VQACluster(
            cluster_id="bad",
            tasks=tfim_tasks,
            ansatz=small_ansatz,
            optimizer=fast_config.make_optimizer(),
            estimator=fast_config.make_estimator(),
            config=fast_config,
            initial_parameters=np.full(small_ansatz.num_parameters, 1.5),
        )
        selections = select_best_states(tfim_tasks, [good, bad])
        assert len(selections) == 3
        for selection in selections:
            assert selection.energy == min(selection.candidate_energies.values())
        with pytest.raises(ValueError):
            select_best_states(tfim_tasks, [])
