"""Tests for result records, execution-tree bookkeeping and the configuration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ShotLedger,
    TreeVQAConfig,
    VQATask,
)
from repro.core.baseline import IndependentBaselineResult
from repro.core.results import RunResult, TaskOutcome, TaskTrajectory
from repro.core.tree import ExecutionTree
from repro.hamiltonians import transverse_field_ising_chain
from repro.optimizers import COBYLA, SPSA
from repro.quantum.sampling import ExactEstimator, ShotNoiseEstimator


def _task(name="t", field=1.0, reference=-5.0):
    return VQATask(
        name=name,
        hamiltonian=transverse_field_ising_chain(4, field),
        reference_energy=reference,
    )


def _result(reference=-5.0, energies=None, shots=None, cls=RunResult):
    task = _task(reference=reference)
    trajectory = TaskTrajectory(task.name)
    energies = energies if energies is not None else [-2.0, -4.0, -4.9]
    shots = shots if shots is not None else [100, 200, 300]
    for s, e in zip(shots, energies):
        trajectory.record(s, e)
    ledger = ShotLedger()
    ledger.charge(task.name, 1, shots[-1])
    outcome = TaskOutcome(
        task=task,
        energy=energies[-1],
        source="x",
        fidelity=task.fidelity(energies[-1]),
        error=task.error(energies[-1]),
    )
    return cls(
        outcomes=[outcome],
        trajectories={task.name: trajectory},
        ledger=ledger,
        total_rounds=len(energies),
    )


class TestTaskTrajectory:
    def test_records_must_be_monotone_in_shots(self):
        trajectory = TaskTrajectory("t")
        trajectory.record(100, -1.0)
        with pytest.raises(ValueError):
            trajectory.record(50, -2.0)

    def test_best_so_far_and_budget_queries(self):
        trajectory = TaskTrajectory("t")
        for shots, energy in [(10, -1.0), (20, -3.0), (30, -2.0)]:
            trajectory.record(shots, energy)
        np.testing.assert_allclose(trajectory.best_energy_so_far(), [-1.0, -3.0, -3.0])
        assert trajectory.best_energy_within(25) == -3.0
        assert trajectory.best_energy_within(5) is None
        assert trajectory.shots_to_reach_energy(-2.5) == 20
        assert trajectory.shots_to_reach_energy(-10.0) is None


class TestRunResult:
    def test_headline_numbers(self):
        result = _result()
        assert result.total_shots == 300
        assert result.min_fidelity() == pytest.approx(0.98)
        assert result.mean_fidelity() == pytest.approx(0.98)
        assert result.final_energies()["t"] == -4.9
        assert result.fidelity_variance() == pytest.approx(0.0)

    def test_shots_to_reach_fidelity(self):
        result = _result()
        # fidelity 0.8 -> energy <= -4.0 reached at 200 shots
        assert result.shots_to_reach_fidelity(0.8) == 200
        assert result.shots_to_reach_fidelity(0.99) is None
        with pytest.raises(ValueError):
            result.shots_to_reach_fidelity(1.5)

    def test_fidelity_at_shots(self):
        result = _result()
        assert result.fidelity_at_shots(250) == pytest.approx(0.8)
        assert result.fidelity_at_shots(50) == 0.0
        assert result.mean_fidelity_at_shots(350) == pytest.approx(0.98)

    def test_max_reported_fidelity(self):
        result = _result()
        assert result.max_reported_fidelity() == pytest.approx(0.98)

    def test_baseline_result_sums_per_task_shots(self):
        result = _result(cls=IndependentBaselineResult)
        # Same single-task case: sum == per-task value.
        assert result.shots_to_reach_fidelity(0.8) == 200
        # Budget is divided by the number of tasks (1 here).
        assert result.fidelity_at_shots(250) == pytest.approx(0.8)


class TestExecutionTree:
    def test_build_and_query(self):
        tree = ExecutionTree()
        tree.add_root("L1B1", ["a", "b", "c"])
        tree.record_iteration("L1B1", 100)
        tree.record_iteration("L1B1", 100)
        tree.add_child("L1B1", "L1B1.0", ["a"])
        tree.add_child("L1B1", "L1B1.1", ["b", "c"])
        tree.mark_split("L1B1", "stalled")
        tree.record_iteration("L1B1.0", 50)
        assert tree.num_nodes == 3
        assert tree.num_splits == 1
        assert tree.depth_levels() == 2
        assert len(tree.leaves()) == 2
        assert tree.node("L1B1").split_reason == "stalled"
        assert tree.total_shots() == 250
        assert tree.critical_depth_iterations() == 3
        rendered = tree.render()
        assert "L1B1.0" in rendered and "L1B1.1" in rendered

    def test_duplicate_and_missing_nodes(self):
        tree = ExecutionTree()
        tree.add_root("A", ["x"])
        with pytest.raises(ValueError):
            tree.add_root("A", ["y"])
        with pytest.raises(KeyError):
            tree.node("missing")


class TestTreeVQAConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TreeVQAConfig(max_rounds=0)
        with pytest.raises(ValueError):
            TreeVQAConfig(window_size=1)
        with pytest.raises(ValueError):
            TreeVQAConfig(optimizer="adam")
        with pytest.raises(ValueError):
            TreeVQAConfig(estimator="exactish")
        with pytest.raises(ValueError):
            TreeVQAConfig(num_split_children=1)
        with pytest.raises(ValueError):
            TreeVQAConfig(max_total_shots=0)

    def test_factories(self):
        config = TreeVQAConfig(optimizer="spsa", optimizer_kwargs={"learning_rate": 0.5}, seed=3)
        optimizer = config.make_optimizer()
        assert isinstance(optimizer, SPSA)
        assert optimizer.learning_rate == 0.5
        cobyla_config = TreeVQAConfig(optimizer="cobyla")
        assert isinstance(cobyla_config.make_optimizer(), COBYLA)
        assert isinstance(config.make_estimator(), ExactEstimator)
        noisy = TreeVQAConfig(estimator="shot_noise")
        assert isinstance(noisy.make_estimator(), ShotNoiseEstimator)

    def test_custom_factories_override(self):
        config = TreeVQAConfig(
            optimizer_factory=lambda: SPSA(learning_rate=9.0),
            estimator_factory=lambda: ExactEstimator(shots_per_term=7),
        )
        assert config.make_optimizer().learning_rate == 9.0
        assert config.make_estimator().shots_per_term == 7

    def test_factory_skips_name_validation(self):
        # Regression: a supplied estimator_factory makes the name moot, just
        # like the optimizer_factory path always has.
        config = TreeVQAConfig(
            optimizer="my-optimizer", optimizer_factory=lambda: SPSA(),
            estimator="my-estimator", estimator_factory=lambda: ExactEstimator(),
        )
        assert isinstance(config.make_optimizer(), SPSA)
        assert isinstance(config.make_estimator(), ExactEstimator)
        with pytest.raises(ValueError):
            TreeVQAConfig(estimator="my-estimator")

    def test_backend_knobs(self):
        from repro.quantum import CliffordBackend, StatevectorBackend

        assert isinstance(TreeVQAConfig().make_backend(), StatevectorBackend)
        assert isinstance(TreeVQAConfig(backend="clifford").make_backend(), CliffordBackend)
        custom = TreeVQAConfig(backend_factory=lambda: CliffordBackend())
        assert isinstance(custom.make_backend(), CliffordBackend)
        assert isinstance(
            TreeVQAConfig(backend="hypervisor", backend_factory=StatevectorBackend).make_backend(),
            StatevectorBackend,
        )
        with pytest.raises(ValueError):
            TreeVQAConfig(backend="hypervisor")
        with pytest.raises(ValueError):
            TreeVQAConfig(max_batch_size=0)
