"""Shared-backend ownership, grow-only cache limits, delta attribution.

These are the lifecycle contracts the job service builds on:

* a controller closes only execution resources it created itself —
  ``run()`` on a caller-supplied backend must never tear a shared worker
  pool down under concurrent tenants;
* a controller config may only *grow* the process-wide program /
  measurement-plan caches (a shrink warns and is ignored — only the cache
  owner shrinks deliberately);
* per-run cache-stat deltas over the shared counters are clamped at ≥ 0
  and labelled ``"shared": True`` whenever another live controller
  overlapped the run;
* ``step_round()`` / ``finalize()`` — the resumable primitives the service
  drives — reproduce ``run()`` bit-identically.
"""

from __future__ import annotations

import warnings

import pytest

from repro.core import TreeVQAConfig, TreeVQAController
from repro.core.controller import live_controller_count
from repro.core.scheduler import RoundScheduler
from repro.quantum.backend import StatevectorBackend, make_execution_backend
from repro.quantum.measurement import (
    measurement_plan_cache_stats,
    set_measurement_plan_cache_limit,
)
from repro.quantum.parallel import ParallelBackend
from repro.quantum.program import program_cache_stats, set_program_cache_limit


def make_config(seed=3, **overrides) -> TreeVQAConfig:
    base = dict(
        max_rounds=3,
        warmup_iterations=2,
        window_size=3,
        epsilon_split=1e-3,
        optimizer_kwargs={"learning_rate": 0.3, "perturbation": 0.15},
        seed=seed,
    )
    base.update(overrides)
    return TreeVQAConfig(**base)


def fingerprint(result) -> dict:
    return {
        outcome.task.name: (
            outcome.energy,
            outcome.source,
            tuple(result.trajectories[outcome.task.name].energies),
            tuple(result.trajectories[outcome.task.name].cumulative_shots),
        )
        for outcome in result.outcomes
    }


@pytest.fixture
def restore_cache_limits():
    program_limit = program_cache_stats()["limit"]
    plan_limit = measurement_plan_cache_stats()["limit"]
    yield
    set_program_cache_limit(program_limit)
    set_measurement_plan_cache_limit(plan_limit)


class TestBackendOwnership:
    def test_default_controller_owns_its_backend(self, tfim_tasks, small_ansatz):
        controller = TreeVQAController(tfim_tasks, small_ansatz, make_config())
        try:
            assert controller.owns_backend
            assert controller.scheduler.owns_backend
        finally:
            controller.close()

    def test_supplied_backend_is_not_owned_and_survives_run(
        self, tfim_tasks, small_ansatz
    ):
        shared = ParallelBackend(StatevectorBackend, workers=2)
        try:
            first = TreeVQAController(
                tfim_tasks, small_ansatz, make_config(3), backend=shared
            )
            assert not first.owns_backend
            assert not first.scheduler.owns_backend
            first.run()
            # run() closed the controller — but not the shared pool.
            assert shared._pool is not None
            # A second tenant reuses the same warm pool.
            second = TreeVQAController(
                tfim_tasks, small_ansatz, make_config(4), backend=shared
            )
            second.run()
            assert shared._pool is not None
            assert shared.worker_cache_stats()["program_reuses"] > 0
        finally:
            shared.close()
        assert shared._pool is None

    def test_unowned_scheduler_close_leaves_backend_open(self):
        backend = ParallelBackend(StatevectorBackend, workers=2)
        estimator = TreeVQAConfig().make_estimator()
        try:
            backend._ensure_pool()
            RoundScheduler(backend, estimator, owns_backend=False).close()
            assert backend._pool is not None
            RoundScheduler(backend, estimator, owns_backend=True).close()
            assert backend._pool is None
        finally:
            backend.close()

    def test_live_controller_registry_tracks_construction_and_close(
        self, tfim_tasks, small_ansatz
    ):
        baseline = live_controller_count()
        controller = TreeVQAController(tfim_tasks, small_ansatz, make_config())
        assert live_controller_count() == baseline + 1
        with TreeVQAController(tfim_tasks, small_ansatz, make_config(4)) as second:
            assert live_controller_count() == baseline + 2
            assert second._observed_shared
        assert live_controller_count() == baseline + 1
        controller.close()
        controller.close()  # idempotent
        assert live_controller_count() == baseline


class TestGrowOnlyCacheLimits:
    def test_config_may_grow_the_shared_caches(
        self, tfim_tasks, small_ansatz, restore_cache_limits
    ):
        bigger = program_cache_stats()["limit"] + 16
        plan_bigger = measurement_plan_cache_stats()["limit"] + 8
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            controller = TreeVQAController(
                tfim_tasks,
                small_ansatz,
                make_config(
                    program_cache_size=bigger,
                    measurement_plan_cache_size=plan_bigger,
                ),
            )
        controller.close()
        assert program_cache_stats()["limit"] == bigger
        assert measurement_plan_cache_stats()["limit"] == plan_bigger

    def test_config_shrink_warns_and_is_ignored(
        self, tfim_tasks, small_ansatz, restore_cache_limits
    ):
        current = program_cache_stats()["limit"]
        with pytest.warns(RuntimeWarning) as caught:
            controller = TreeVQAController(
                tfim_tasks,
                small_ansatz,
                make_config(program_cache_size=current - 1),
            )
        controller.close()
        assert program_cache_stats()["limit"] == current
        message = str(caught[0].message)
        # The warning must be actionable: name the deliberate paths.
        assert "set_program_cache_limit" in message
        assert "TreeVQAService" in message

    def test_measurement_plan_shrink_warns_and_is_ignored(
        self, tfim_tasks, small_ansatz, restore_cache_limits
    ):
        current = measurement_plan_cache_stats()["limit"]
        with pytest.warns(RuntimeWarning, match="set_measurement_plan_cache_limit"):
            controller = TreeVQAController(
                tfim_tasks,
                small_ansatz,
                make_config(measurement_plan_cache_size=current - 1),
            )
        controller.close()
        assert measurement_plan_cache_stats()["limit"] == current

    def test_equal_limit_is_a_silent_noop(
        self, tfim_tasks, small_ansatz, restore_cache_limits
    ):
        current = program_cache_stats()["limit"]
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            controller = TreeVQAController(
                tfim_tasks, small_ansatz, make_config(program_cache_size=current)
            )
        controller.close()
        assert program_cache_stats()["limit"] == current


class TestCacheDeltaAttribution:
    def test_negative_counter_deltas_are_clamped(self, tfim_tasks, small_ansatz):
        controller = TreeVQAController(tfim_tasks, small_ansatz, make_config())
        try:
            stats = dict(controller._program_cache_baseline)
            baseline = dict(stats)
            # A concurrent cache clear / co-tenant eviction can drive the
            # shared cumulative counters *below* this run's baseline.
            stats["hits"] = baseline["hits"] - 5
            stats["misses"] = baseline["misses"] + 3
            delta = controller._cache_delta(stats, baseline)
            assert delta["hits"] == 0
            assert delta["misses"] == 3
        finally:
            controller.close()

    def test_solo_run_metadata_is_not_labelled_shared(self, tfim_tasks, small_ansatz):
        assert live_controller_count() == 0, "leaked controller from another test"
        result = TreeVQAController(tfim_tasks, small_ansatz, make_config()).run()
        assert "shared" not in result.metadata["program_cache"]

    def test_overlapping_controllers_label_deltas_shared(
        self, tfim_tasks, small_ansatz
    ):
        with TreeVQAController(tfim_tasks, small_ansatz, make_config(4)):
            result = TreeVQAController(tfim_tasks, small_ansatz, make_config(3)).run()
        assert result.metadata["program_cache"]["shared"] is True

    def test_shared_flag_is_sticky_across_the_run(self, tfim_tasks, small_ansatz):
        controller = TreeVQAController(tfim_tasks, small_ansatz, make_config())
        overlap = TreeVQAController(tfim_tasks, small_ansatz, make_config(4))
        overlap.close()  # overlap ends before the first round even runs
        while controller.step_round() is not None:
            pass
        result = controller.finalize()
        controller.close()
        assert result.metadata["program_cache"]["shared"] is True


class TestResumablePrimitives:
    def test_step_round_loop_matches_run_bit_identically(
        self, tfim_tasks, small_ansatz
    ):
        reference = TreeVQAController(tfim_tasks, small_ansatz, make_config()).run()
        controller = TreeVQAController(tfim_tasks, small_ansatz, make_config())
        snapshots = []
        while (snapshot := controller.step_round()) is not None:
            snapshots.append(snapshot)
        stepped = controller.finalize()
        controller.close()
        assert fingerprint(stepped) == fingerprint(reference)
        assert [s.round_index for s in snapshots] == list(
            range(1, reference.total_rounds + 1)
        )
        assert snapshots[-1].total_shots == reference.ledger.total
        assert sum(s.shots_this_round for s in snapshots) == reference.ledger.total

    def test_snapshot_payload_mirrors_records(self, tfim_tasks, small_ansatz):
        controller = TreeVQAController(tfim_tasks, small_ansatz, make_config())
        try:
            snapshot = controller.step_round()
            assert snapshot.round_index == 1 == controller.rounds_completed
            assert snapshot.num_active_clusters == len(controller.active_clusters)
            assert set(snapshot.individual_losses) == {
                task.name for task in tfim_tasks
            }
            assert set(snapshot.mixed_losses) == {
                record.cluster_id for record in snapshot.records
            }
        finally:
            controller.close()

    def test_step_round_returns_none_after_round_limit(self, tfim_tasks, small_ansatz):
        controller = TreeVQAController(
            tfim_tasks, small_ansatz, make_config(max_rounds=1)
        )
        try:
            assert controller.step_round() is not None
            assert controller.step_round() is None
            assert controller.step_round() is None
        finally:
            controller.close()

    def test_finalize_twice_and_step_after_finalize_raise(
        self, tfim_tasks, small_ansatz
    ):
        controller = TreeVQAController(
            tfim_tasks, small_ansatz, make_config(max_rounds=1)
        )
        try:
            controller.step_round()
            controller.finalize()
            with pytest.raises(RuntimeError, match="finalized"):
                controller.finalize()
            with pytest.raises(RuntimeError, match="finalized"):
                controller.step_round()
        finally:
            controller.close()

    def test_run_after_stepping_raises(self, tfim_tasks, small_ansatz):
        controller = TreeVQAController(tfim_tasks, small_ansatz, make_config())
        try:
            controller.step_round()
            with pytest.raises(RuntimeError, match="once"):
                controller.run()
        finally:
            controller.close()

    def test_early_finalize_post_processes_a_partial_run(
        self, tfim_tasks, small_ansatz
    ):
        controller = TreeVQAController(tfim_tasks, small_ansatz, make_config())
        try:
            controller.step_round()
            result = controller.finalize()
            assert result.total_rounds == 1
            assert len(result.outcomes) == len(tfim_tasks)
        finally:
            controller.close()

    def test_budget_exhaustion_stops_stepping(self, tfim_tasks, small_ansatz):
        probe = TreeVQAController(tfim_tasks, small_ansatz, make_config())
        first = probe.step_round()
        probe.finalize()
        probe.close()
        controller = TreeVQAController(
            tfim_tasks,
            small_ansatz,
            make_config(max_rounds=50, max_total_shots=first.total_shots),
        )
        try:
            assert controller.step_round() is not None
            assert controller.step_round() is None
        finally:
            controller.close()

    def test_width_routed_backend_can_be_shared(self, tfim_tasks, small_ansatz):
        """Explicit backend ownership also holds for registry backends
        constructed outside the controller (the service's in-process mode)."""
        shared = make_execution_backend("statevector")
        reference = TreeVQAController(tfim_tasks, small_ansatz, make_config()).run()
        results = [
            TreeVQAController(
                tfim_tasks, small_ansatz, make_config(), backend=shared
            ).run()
            for _ in range(2)
        ]
        for result in results:
            assert fingerprint(result) == fingerprint(reference)
