"""Tests for VQA tasks, shot accounting, similarity metrics and mixed Hamiltonians."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DEFAULT_SHOTS_PER_PAULI_TERM,
    ShotLedger,
    ShotRecord,
    VQATask,
    build_mixed_hamiltonian,
    coefficient_l1_distance,
    distance_matrix,
    gaussian_similarity,
    ground_state_overlap_matrix,
    normalize_matrix,
    shots_for_run,
    shots_per_evaluation,
    similarity_matrix,
)
from repro.hamiltonians import MolecularFamily, get_molecule, transverse_field_ising_chain
from repro.quantum.pauli import PauliOperator


class TestVQATask:
    def test_properties(self, tfim_tasks):
        task = tfim_tasks[0]
        assert task.num_qubits == 4
        assert task.num_pauli_terms == 7
        assert "tfim" in repr(task)

    def test_reference_energy_cached(self, tfim_tasks):
        task = tfim_tasks[0]
        assert task.reference_energy is None
        energy = task.exact_ground_energy()
        assert task.reference_energy == energy
        assert task.exact_ground_energy() == energy

    def test_error_and_fidelity(self, tfim_tasks):
        task = tfim_tasks[0]
        exact = task.exact_ground_energy()
        assert task.error(exact) == pytest.approx(0.0)
        assert task.fidelity(exact) == pytest.approx(1.0)
        assert task.fidelity(exact * 0.5) == pytest.approx(0.5)
        assert 0.0 <= task.fidelity(100.0) <= 1.0

    def test_initial_bitstring_validation(self):
        hamiltonian = transverse_field_ising_chain(3, 1.0)
        with pytest.raises(ValueError):
            VQATask("bad", hamiltonian, initial_bitstring="01")
        with pytest.raises(ValueError):
            VQATask("bad", hamiltonian, initial_bitstring="0a1")

    def test_initial_state(self):
        hamiltonian = transverse_field_ising_chain(3, 1.0)
        task = VQATask("t", hamiltonian, initial_bitstring="010")
        assert abs(task.initial_state().data[2]) == pytest.approx(1.0)
        default = VQATask("t2", hamiltonian)
        assert abs(default.initial_state().data[0]) == pytest.approx(1.0)


class TestShotAccounting:
    def test_per_evaluation_formula(self):
        operator = PauliOperator.from_terms([("XX", 1.0), ("ZZ", 1.0), ("II", 3.0)])
        # identity terms are not measured
        assert shots_per_evaluation(operator) == 2 * DEFAULT_SHOTS_PER_PAULI_TERM
        assert shots_per_evaluation(10, 100) == 1000
        with pytest.raises(ValueError):
            shots_per_evaluation(0)
        with pytest.raises(ValueError):
            shots_per_evaluation(10, 0)

    def test_overall_formula_matches_paper(self):
        # N_overall = iterations × evals/iter × 4096 × #terms (§7.3)
        assert shots_for_run(100, 2, 50) == 100 * 2 * 4096 * 50
        with pytest.raises(ValueError):
            shots_for_run(-1, 2, 50)

    def test_ledger_accumulates(self):
        ledger = ShotLedger()
        ledger.charge("a", 1, 100)
        ledger.charge("b", 1, 50)
        ledger.charge("a", 2, 25)
        assert ledger.total == 175
        assert ledger.total_for("a") == 125
        assert ledger.sources() == ["a", "b"]
        assert ledger.cumulative_totals() == [100, 150, 175]

    def test_ledger_charge_evaluations(self):
        ledger = ShotLedger(shots_per_term=10)
        operator = PauliOperator.from_terms([("XX", 1.0), ("ZZ", 1.0)])
        total = ledger.charge_evaluations("a", 1, operator, num_evaluations=3)
        assert total == 3 * 10 * 2

    def test_ledger_rejects_negative(self):
        with pytest.raises(ValueError):
            ShotLedger().charge("a", 1, -5)

    def test_ledger_total_is_a_running_total(self):
        # Regression: total used to re-sum the full record list on every
        # call (and charge() returned it), making the controller's
        # per-record budget checks quadratic over a run.  The running total
        # must stay consistent with the records under many charges.
        ledger = ShotLedger()
        expected = 0
        for index in range(1000):
            expected += index
            assert ledger.charge("s", index, index) == expected
        assert ledger.total == expected == sum(r.shots for r in ledger.records)
        assert ledger.cumulative_totals()[-1] == expected

    def test_ledger_prepopulated_records_total(self):
        records = [ShotRecord("a", 1, 10), ShotRecord("b", 1, 5)]
        ledger = ShotLedger(records=records)
        assert ledger.total == 15
        assert ledger.charge("c", 2, 1) == 16


class TestSimilarity:
    def test_l1_distance_simple(self):
        a = PauliOperator.from_terms([("XX", 1.0), ("ZZ", 2.0)])
        b = PauliOperator.from_terms([("XX", 1.5), ("YY", 1.0)])
        assert coefficient_l1_distance(a, b) == pytest.approx(0.5 + 2.0 + 1.0)

    def test_distance_matrix_properties(self):
        operators = [transverse_field_ising_chain(4, h) for h in (0.5, 1.0, 1.5)]
        distances = distance_matrix(operators)
        assert distances.shape == (3, 3)
        np.testing.assert_allclose(np.diag(distances), 0.0)
        np.testing.assert_allclose(distances, distances.T)
        # Distance grows with field difference: 4 X terms × |Δh|
        assert distances[0, 2] == pytest.approx(4.0)
        assert distances[0, 1] == pytest.approx(2.0)

    def test_gaussian_similarity_range(self):
        distances = np.array([[0.0, 1.0], [1.0, 0.0]])
        similarity = gaussian_similarity(distances)
        assert similarity[0, 0] == pytest.approx(1.0)
        assert 0 < similarity[0, 1] < 1
        custom = gaussian_similarity(distances, sigma=10.0)
        assert custom[0, 1] > similarity[0, 1]

    def test_similarity_matrix_orders_neighbours(self):
        family = MolecularFamily(get_molecule("LiH"))
        operators = [family.hamiltonian(r) for r in (1.45, 1.50, 1.65)]
        similarity = similarity_matrix(operators)
        assert similarity[0, 1] > similarity[0, 2]

    def test_ground_state_overlap_matrix(self):
        operators = [transverse_field_ising_chain(4, h) for h in (0.3, 0.35, 2.5)]
        overlaps = ground_state_overlap_matrix(operators)
        np.testing.assert_allclose(np.diag(overlaps), 1.0)
        assert overlaps[0, 1] > overlaps[0, 2]

    def test_normalize_matrix(self):
        matrix = np.array([[1.0, 3.0], [2.0, 5.0]])
        normalized = normalize_matrix(matrix)
        assert normalized.min() == 0.0
        assert normalized.max() == 1.0
        np.testing.assert_allclose(normalize_matrix(np.full((2, 2), 4.0)), 1.0)

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            distance_matrix([])

    @given(st.lists(st.floats(0.2, 3.0), min_size=2, max_size=5))
    @settings(max_examples=15, deadline=None)
    def test_similarity_symmetric_and_bounded(self, fields):
        operators = [transverse_field_ising_chain(3, float(h)) for h in fields]
        similarity = similarity_matrix(operators)
        np.testing.assert_allclose(similarity, similarity.T, atol=1e-12)
        assert np.all(similarity >= 0) and np.all(similarity <= 1 + 1e-12)


class TestMixedHamiltonian:
    def test_average_of_identical_operators_is_identity(self):
        operator = transverse_field_ising_chain(4, 1.0)
        mixed = build_mixed_hamiltonian([operator, operator, operator])
        assert mixed.operator.equals(operator)
        assert mixed.num_tasks == 3

    def test_padding_creates_shared_basis(self):
        a = PauliOperator.from_terms([("XX", 1.0)])
        b = PauliOperator.from_terms([("ZZ", 2.0)])
        mixed = build_mixed_hamiltonian([a, b])
        assert mixed.num_terms == 2
        assert mixed.operator.coefficient("XX") == pytest.approx(0.5)
        assert mixed.operator.coefficient("ZZ") == pytest.approx(1.0)

    def test_mixed_is_hermitian_mean(self):
        operators = [transverse_field_ising_chain(4, h) for h in (0.5, 1.5)]
        mixed = build_mixed_hamiltonian(operators)
        assert mixed.operator.is_hermitian()
        # Mean field of 0.5 and 1.5 is 1.0.
        expected = transverse_field_ising_chain(4, 1.0)
        assert mixed.operator.equals(expected)

    def test_individual_value_recombination(self):
        a = PauliOperator.from_terms([("XX", 1.0), ("ZZ", 0.5)])
        b = PauliOperator.from_terms([("ZZ", 2.0)])
        mixed = build_mixed_hamiltonian([a, b])
        term_values = {pauli: 1.0 for pauli in mixed.basis}
        assert mixed.individual_value(0, term_values) == pytest.approx(1.5)
        assert mixed.individual_value(1, term_values) == pytest.approx(2.0)
        values = mixed.individual_values(term_values)
        np.testing.assert_allclose(values, [1.5, 2.0])
        with pytest.raises(IndexError):
            mixed.individual_value(5, term_values)

    def test_qubit_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            build_mixed_hamiltonian(
                [PauliOperator.from_terms([("XX", 1.0)]), PauliOperator.from_terms([("X", 1.0)])]
            )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            build_mixed_hamiltonian([])
