"""Tests for the batched round scheduler and controller-level parity.

The headline contract of the execution-backend refactor: batched execution
is a pure refactor of observable behaviour.  With the exact estimator, a
batched controller run reproduces the sequential (``max_batch_size=1``) run's
trajectories bit-for-bit, and both match the legacy per-request
``cluster.step()`` path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ansatz import HardwareEfficientAnsatz
from repro.core import (
    RoundScheduler,
    TreeVQAConfig,
    TreeVQAController,
    VQACluster,
    VQATask,
)
from repro.hamiltonians import transverse_field_ising_chain
from repro.quantum import StatevectorBackend
from repro.quantum.sampling import ExactEstimator


def make_cluster(tasks, ansatz, config, estimator=None):
    return VQACluster(
        cluster_id="test",
        tasks=tasks,
        ansatz=ansatz,
        optimizer=config.make_optimizer(),
        estimator=estimator if estimator is not None else config.make_estimator(),
        config=config,
        initial_parameters=ansatz.zero_parameters(),
    )


class TestRoundScheduler:
    def test_round_matches_sequential_cluster_step(
        self, tfim_tasks, small_ansatz, fast_config
    ):
        # Same seeds, two identical clusters: one stepped through the batched
        # scheduler, one through the self-contained sequential step().
        batched = make_cluster(tfim_tasks, small_ansatz, fast_config)
        sequential = make_cluster(tfim_tasks, small_ansatz, fast_config)
        scheduler = RoundScheduler(StatevectorBackend(), batched.estimator)
        for _ in range(5):
            (_, record_batched), = scheduler.run_round([batched])
            record_sequential = sequential.step()
            assert record_batched.mixed_loss == record_sequential.mixed_loss
            assert record_batched.individual_losses == record_sequential.individual_losses
            assert record_batched.shots == record_sequential.shots
            np.testing.assert_array_equal(
                record_batched.parameters, record_sequential.parameters
            )

    def test_cobyla_cluster_completes_via_micro_cycles(
        self, tfim_tasks, small_ansatz
    ):
        config = TreeVQAConfig(
            max_rounds=5, warmup_iterations=0, window_size=2,
            optimizer="cobyla", optimizer_kwargs={"evaluations_per_step": 4}, seed=0,
        )
        cluster = make_cluster(tfim_tasks, small_ansatz, config)
        scheduler = RoundScheduler(StatevectorBackend(), cluster.estimator)
        completed = scheduler.run_round([cluster])
        assert len(completed) == 1
        record = completed[0][1]
        assert record.num_evaluations >= 2
        assert cluster.iterations == 1
        # One probe per micro-cycle: at least num_evaluations dispatches.
        assert scheduler.batches_executed >= record.num_evaluations

    def test_mixed_spsa_and_cobyla_clusters_in_one_round(self, tfim_tasks, small_ansatz):
        spsa_config = TreeVQAConfig(max_rounds=5, warmup_iterations=0, window_size=2, seed=0)
        cobyla_config = TreeVQAConfig(
            max_rounds=5, warmup_iterations=0, window_size=2,
            optimizer="cobyla", optimizer_kwargs={"evaluations_per_step": 3}, seed=0,
        )
        estimator = ExactEstimator(seed=0)
        fast = make_cluster(tfim_tasks[:2], small_ansatz, spsa_config, estimator)
        slow = make_cluster(tfim_tasks[2:], small_ansatz, cobyla_config, estimator)
        scheduler = RoundScheduler(StatevectorBackend(), estimator)
        completed = scheduler.run_round([fast, slow])
        assert {cluster.cluster_id for cluster, _ in completed} == {"test"}
        assert fast.iterations == 1 and slow.iterations == 1

    def test_on_record_stop_leaves_later_clusters_unstepped(
        self, tfim_tasks, small_ansatz, fast_config
    ):
        estimator = ExactEstimator(seed=0)
        first = make_cluster(tfim_tasks[:1], small_ansatz, fast_config, estimator)
        second = make_cluster(tfim_tasks[1:], small_ansatz, fast_config, estimator)
        initial = second.parameters
        scheduler = RoundScheduler(StatevectorBackend(), estimator)
        completed = scheduler.run_round(
            [first, second], on_record=lambda cluster, record: False
        )
        assert len(completed) == 1 and completed[0][0] is first
        assert second.iterations == 0
        np.testing.assert_array_equal(second.parameters, initial)
        # The estimator only saw the reported cluster's evaluations: the
        # aborted cluster's backend work is never pushed through the noise
        # layer, so shot counters match the sequential loop's accounting.
        assert estimator.total_evaluations == 2
        # The aborted cluster can still start a fresh step afterwards.
        record = second.step()
        assert record.iteration == 1

    def test_records_reported_in_cluster_order_across_micro_cycles(
        self, tfim_tasks, small_ansatz
    ):
        # Cluster 0 needs several COBYLA micro-cycles; cluster 1 (SPSA)
        # completes in the first.  Reporting must still follow cluster order,
        # like the sequential per-cluster loop.
        cobyla_config = TreeVQAConfig(
            max_rounds=5, warmup_iterations=0, window_size=2,
            optimizer="cobyla", optimizer_kwargs={"evaluations_per_step": 5}, seed=0,
        )
        spsa_config = TreeVQAConfig(max_rounds=5, warmup_iterations=0, window_size=2, seed=0)
        estimator = ExactEstimator(seed=0)
        slow = make_cluster(tfim_tasks[:1], small_ansatz, cobyla_config, estimator)
        fast = make_cluster(tfim_tasks[1:], small_ansatz, spsa_config, estimator)
        scheduler = RoundScheduler(StatevectorBackend(), estimator)
        completed = scheduler.run_round([slow, fast])
        assert [cluster for cluster, _ in completed] == [slow, fast]

    def test_max_batch_size_chunks_dispatches(self, tfim_tasks, small_ansatz, fast_config):
        estimator = ExactEstimator(seed=0)
        clusters = [
            make_cluster([task], small_ansatz, fast_config, estimator)
            for task in tfim_tasks
        ]
        backend = StatevectorBackend()
        scheduler = RoundScheduler(backend, estimator, max_batch_size=2)
        scheduler.run_round(clusters)
        # 3 SPSA clusters ask 6 requests; chunks of 2 -> 3 dispatches.
        assert scheduler.requests_executed == 6
        assert backend.batches_run == 3

    def test_program_round_bit_identical_to_legacy_and_sequential(
        self, tfim_tasks, small_ansatz
    ):
        # The tentpole regression: mixed circuit structures (two ansatz
        # depths) and heterogeneous optimizers (SPSA + COBYLA) in one round,
        # run three ways — program path, legacy bound-circuit path, and the
        # max_batch_size=1 sequential degenerate case — must produce
        # bit-identical step records under the exact estimator.
        deep_ansatz = HardwareEfficientAnsatz(4, num_layers=2)

        def run(use_programs: bool, max_batch_size: int | None = None):
            estimator = ExactEstimator(seed=0)
            spsa_config = TreeVQAConfig(
                max_rounds=5, warmup_iterations=0, window_size=2, seed=0,
                use_circuit_programs=use_programs,
            )
            cobyla_config = TreeVQAConfig(
                max_rounds=5, warmup_iterations=0, window_size=2,
                optimizer="cobyla", optimizer_kwargs={"evaluations_per_step": 3},
                seed=0, use_circuit_programs=use_programs,
            )
            clusters = [
                VQACluster(
                    "spsa-shallow", tfim_tasks[:2], small_ansatz,
                    spsa_config.make_optimizer(), estimator, spsa_config,
                    small_ansatz.zero_parameters(),
                ),
                VQACluster(
                    "cobyla-deep", tfim_tasks[2:], deep_ansatz,
                    cobyla_config.make_optimizer(), estimator, cobyla_config,
                    deep_ansatz.zero_parameters(),
                ),
            ]
            backend = StatevectorBackend()
            scheduler = RoundScheduler(
                backend, estimator, max_batch_size=max_batch_size
            )
            records = []
            for _ in range(3):
                records.extend(record for _, record in scheduler.run_round(clusters))
            return records, backend

        programs, program_backend = run(True)
        legacy, legacy_backend = run(False)
        sequential, _ = run(True, max_batch_size=1)
        assert program_backend.program_requests > 0
        assert legacy_backend.program_requests == 0
        assert len(programs) == len(legacy) == len(sequential) == 6
        for left, right in zip(programs, legacy):
            assert left.mixed_loss == right.mixed_loss
            assert left.individual_losses == right.individual_losses
            np.testing.assert_array_equal(left.parameters, right.parameters)
        for left, right in zip(programs, sequential):
            assert left.mixed_loss == right.mixed_loss
            np.testing.assert_array_equal(left.parameters, right.parameters)

    def test_scalar_only_estimator_with_program_requests(
        self, tfim_tasks, small_ansatz, fast_config
    ):
        # Estimators that consume neither term vectors nor states force the
        # per-request estimate() path; program requests must materialise
        # their circuits there and reproduce the legacy result exactly.
        class ScalarOnly(ExactEstimator):
            consumes_term_vectors = False
            consumes_states = False

        estimator = ScalarOnly(seed=0)
        probe = make_cluster(tfim_tasks, small_ansatz, fast_config, estimator)
        assert probe.ask()[0].circuit is None  # clusters really emit program requests
        cluster = make_cluster(tfim_tasks, small_ansatz, fast_config, estimator)
        backend = StatevectorBackend()
        scheduler = RoundScheduler(backend, estimator)
        (_, record), = scheduler.run_round([cluster])
        assert backend.batches_run == 0  # never touched the backend
        reference = make_cluster(tfim_tasks, small_ansatz, fast_config, ExactEstimator(seed=0))
        expected = reference.step()
        assert record.mixed_loss == expected.mixed_loss
        np.testing.assert_array_equal(record.parameters, expected.parameters)

    def test_scalar_only_estimator_uses_legacy_path(self, tfim_tasks, small_ansatz, fast_config):
        # The capability flags are opt-in: a custom estimator that resets
        # them to the BaseEstimator defaults is driven per-request, whatever
        # it implements internally.
        class ScalarOnly(ExactEstimator):
            consumes_term_vectors = False
            consumes_states = False

        estimator = ScalarOnly(seed=0)
        cluster = make_cluster(tfim_tasks, small_ansatz, fast_config, estimator)
        backend = StatevectorBackend()
        scheduler = RoundScheduler(backend, estimator)
        (_, record), = scheduler.run_round([cluster])
        assert backend.batches_run == 0  # never touched the backend
        assert scheduler.batches_executed == 0  # the counter means backend dispatches
        assert record.num_evaluations == 2
        assert estimator.total_evaluations == 2

    def test_buffered_completed_step_is_charged_after_stop(
        self, tfim_tasks, small_ansatz, fast_config
    ):
        # Cluster 1 completes its iteration in one micro-cycle while cluster 0
        # needs two; the stop fires at cluster 0's record, with cluster 1's
        # completed record still buffered for in-order reporting.  Completed
        # work must be charged, not silently dropped.
        from repro.optimizers.base import IterativeOptimizer, OptimizerStep

        class FixedCycles(IterativeOptimizer):
            def __init__(self, cycles):
                super().__init__()
                self.cycles = cycles
                self._done = 0

            def _ask(self):
                return [self.parameters]

            def _tell(self, points, values):
                self._done += 1
                if self._done < self.cycles:
                    return None
                self._done = 0
                self._iteration += 1
                return OptimizerStep(
                    parameters=self.parameters,
                    loss=values[0],
                    num_evaluations=self.cycles,
                    iteration=self._iteration,
                )

        estimator = ExactEstimator(seed=0)

        def build(tasks, cycles):
            return VQACluster(
                cluster_id=f"cycles-{cycles}",
                tasks=tasks,
                ansatz=small_ansatz,
                optimizer=FixedCycles(cycles),
                estimator=estimator,
                config=fast_config,
                initial_parameters=small_ansatz.zero_parameters(),
            )

        slow = build(tfim_tasks[:1], cycles=2)
        fast = build(tfim_tasks[1:], cycles=1)
        charged = []
        completed = RoundScheduler(StatevectorBackend(), estimator).run_round(
            [slow, fast],
            on_record=lambda cluster, record: charged.append(cluster.cluster_id) and False,
        )
        # Reported in cluster order; the buffered fast cluster's record is
        # charged even though the stop fired at the slow cluster's record.
        assert [cluster for cluster, _ in completed] == [slow, fast]
        assert charged == ["cycles-2", "cycles-1"]
        assert fast.iterations == 1

    def test_wrong_arity_tell_leaves_cluster_usable(self, tfim_tasks, small_ansatz, fast_config):
        cluster = make_cluster(tfim_tasks, small_ansatz, fast_config)
        requests = cluster.ask()
        results = [
            cluster.estimator.estimate(r.resolve_circuit(), r.operator, r.initial_state)
            for r in requests
        ]
        with pytest.raises(ValueError):
            cluster.tell(results[:1])
        # The pending ask survives a failed tell; retrying with the full
        # result set completes the step.
        record = cluster.tell(results)
        assert record is not None and record.iteration == 1

    def test_invalid_max_batch_size(self):
        with pytest.raises(ValueError):
            RoundScheduler(StatevectorBackend(), ExactEstimator(), max_batch_size=0)


class TestControllerParity:
    def _run(self, tasks, ansatz, **config_kwargs):
        config = TreeVQAConfig(
            max_rounds=40, warmup_iterations=5, window_size=4, epsilon_split=1e-3,
            optimizer_kwargs={"learning_rate": 0.3, "perturbation": 0.15}, seed=3,
            **config_kwargs,
        )
        return TreeVQAController(tasks, ansatz, config).run()

    def test_batched_run_is_bit_identical_to_batch_size_one(
        self, tfim_tasks, small_ansatz
    ):
        batched = self._run(tfim_tasks, small_ansatz)
        sequential = self._run(tfim_tasks, small_ansatz, max_batch_size=1)
        assert batched.total_rounds == sequential.total_rounds
        assert batched.total_shots == sequential.total_shots
        for name in batched.trajectories:
            left = batched.trajectories[name]
            right = sequential.trajectories[name]
            assert left.cumulative_shots == right.cumulative_shots
            assert left.energies == right.energies  # bit-for-bit
        for left, right in zip(batched.outcomes, sequential.outcomes):
            assert left.energy == right.energy
            assert left.source == right.source

    def test_program_run_is_bit_identical_to_legacy_bound_circuits(
        self, tfim_tasks, small_ansatz
    ):
        programs = self._run(tfim_tasks, small_ansatz)
        legacy = self._run(tfim_tasks, small_ansatz, use_circuit_programs=False)
        assert programs.total_shots == legacy.total_shots
        for name in programs.trajectories:
            left = programs.trajectories[name]
            right = legacy.trajectories[name]
            assert left.cumulative_shots == right.cumulative_shots
            assert left.energies == right.energies  # bit-for-bit
        for left, right in zip(programs.outcomes, legacy.outcomes):
            assert left.energy == right.energy
            assert left.source == right.source
        cache = programs.metadata["program_cache"]
        # The run compiled (or re-used) the ansatz program through the
        # persistent cache: at least one lookup happened during this run.
        assert cache["hits"] + cache["misses"] >= 1

    def test_clifford_backend_run_matches_statevector_on_generic_angles(
        self, tfim_tasks, small_ansatz
    ):
        # Generic (non-Clifford) angles: every request falls back to the
        # dense batched path, so the runs agree exactly.
        dense = self._run(tfim_tasks, small_ansatz)
        clifford = self._run(tfim_tasks, small_ansatz, backend="clifford")
        for name in dense.trajectories:
            assert dense.trajectories[name].energies == clifford.trajectories[name].energies

    def test_shot_budget_respected_with_multiple_root_clusters(self, small_ansatz):
        tasks = [
            VQATask("a", transverse_field_ising_chain(4, 0.9), initial_bitstring="0000"),
            VQATask("b", transverse_field_ising_chain(4, 1.0), initial_bitstring="0011"),
            VQATask("c", transverse_field_ising_chain(4, 1.1), initial_bitstring="1111"),
        ]
        per_step = 2 * 7 * 4096
        config = TreeVQAConfig(max_rounds=100, max_total_shots=4 * per_step, seed=0)
        controller = TreeVQAController(tasks, small_ansatz, config)
        result = controller.run()
        # Round 1 charges three cluster steps; round 2 stops as soon as the
        # first cluster's step exhausts the budget, leaving the other two
        # clusters un-stepped (exactly like the sequential loop's break).
        assert result.total_shots == 4 * per_step
        assert result.total_rounds == 2
        iteration_counts = sorted(c.iterations for c in controller._clusters)
        assert iteration_counts == [1, 1, 2]

    def test_scheduler_counters_exposed(self, tfim_tasks, small_ansatz, fast_config):
        controller = TreeVQAController(tfim_tasks, small_ansatz, fast_config)
        result = controller.run()
        # Every objective evaluation is exactly one backend request (the TFIM
        # tasks share all 7 non-identity terms, so every cluster's evaluation
        # charges the same 7-term cost regardless of splits).
        per_evaluation = 7 * fast_config.shots_per_pauli_term
        expected_requests = result.total_shots // per_evaluation
        assert controller.scheduler.requests_executed == expected_requests
        assert controller.backend.requests_run == expected_requests


class TestInitialBitstringNormalization:
    def test_none_and_explicit_zero_bitstring_share_a_cluster(self, small_ansatz, fast_config):
        # Regression: these two tasks used to land in the same root group in
        # the controller but then fail VQACluster's shared-initial-state
        # check ({None, "0000"} has length 2).
        tasks = [
            VQATask("implicit", transverse_field_ising_chain(4, 0.9)),
            VQATask("explicit", transverse_field_ising_chain(4, 1.1), initial_bitstring="0000"),
        ]
        cluster = make_cluster(tasks, small_ansatz, fast_config)
        assert cluster.num_tasks == 2
        controller = TreeVQAController(tasks, small_ansatz, fast_config)
        assert len(controller.active_clusters) == 1
        assert sorted(controller.active_clusters[0].task_names) == ["explicit", "implicit"]

    def test_resolved_initial_bitstring_property(self):
        implicit = VQATask("implicit", transverse_field_ising_chain(3, 1.0))
        explicit = VQATask(
            "explicit", transverse_field_ising_chain(3, 1.0), initial_bitstring="010"
        )
        assert implicit.resolved_initial_bitstring == "000"
        assert explicit.resolved_initial_bitstring == "010"

    def test_distinct_bitstrings_still_rejected(self, small_ansatz, fast_config):
        tasks = [
            VQATask("a", transverse_field_ising_chain(4, 1.0), initial_bitstring="0000"),
            VQATask("b", transverse_field_ising_chain(4, 1.1), initial_bitstring="1111"),
        ]
        with pytest.raises(ValueError):
            make_cluster(tasks, small_ansatz, fast_config)
