"""RNG-parity suite for batched measurement sampling.

The sampling estimator's bit-identity contract: batched evaluation over
backend-prepared states must equal per-request evaluation — same sampled
term vectors, same values, same variances, same ``shots_used`` — at every
level of the stack (estimator, scheduler, controller) and for every
``max_batch_size`` and ``execution_workers`` setting.  The anchor is the
per-request child-generator derivation (keyed by strict consumption order),
so these tests compare with ``np.testing.assert_array_equal`` — never
``allclose``.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.ansatz import HardwareEfficientAnsatz
from repro.core import RoundScheduler, TreeVQAConfig, TreeVQAController, VQACluster, VQATask
from repro.hamiltonians import transverse_field_ising_chain
from repro.quantum import (
    ExecutionRequest,
    ParallelBackend,
    StatevectorBackend,
    WidthRoutedBackend,
)
from repro.quantum.pauli_propagation import PauliPropagationBackend
from repro.quantum.sampling import SamplingEstimator


@pytest.fixture(autouse=True)
def _explicit_worker_counts(monkeypatch):
    """Neutralise any ambient ``REPRO_EXECUTION_WORKERS`` so the sequential
    reference runs really are sequential."""
    monkeypatch.delenv("REPRO_EXECUTION_WORKERS", raising=False)


SHOTS = 64


class PerRequestSampling(SamplingEstimator):
    """Same physics and RNG derivation, but advertises no batched
    capability — the scheduler drives it through per-request estimate()."""

    consumes_states = False


def _tasks(count=4, num_qubits=3):
    fields = np.linspace(0.7, 1.3, count)
    return [
        VQATask(
            name=f"tfim@{field:.3f}",
            hamiltonian=transverse_field_ising_chain(num_qubits, float(field)),
            scan_parameter=float(field),
        )
        for field in fields
    ]


def _clusters(tasks, estimator, *, seed=0):
    clusters = []
    for index, task in enumerate(tasks):
        config = TreeVQAConfig(
            max_rounds=4,
            warmup_iterations=0,
            window_size=2,
            shots_per_pauli_term=SHOTS,
            optimizer="spsa" if index % 2 == 0 else "cobyla",
            disable_automatic_splits=True,
            seed=seed,
        )
        ansatz = HardwareEfficientAnsatz(task.num_qubits, num_layers=1 + index % 2)
        clusters.append(
            VQACluster(
                cluster_id=f"C{index}",
                tasks=[task],
                ansatz=ansatz,
                optimizer=config.make_optimizer(),
                estimator=estimator,
                config=config,
                initial_parameters=ansatz.zero_parameters(),
            )
        )
    return clusters


def _run_rounds(scheduler, clusters, rounds=3):
    records = []
    for _ in range(rounds):
        records.extend(record for _, record in scheduler.run_round(clusters))
    return records


def _assert_records_identical(left, right):
    assert len(left) == len(right)
    for ours, reference in zip(left, right):
        assert ours.cluster_id == reference.cluster_id
        assert ours.mixed_loss == reference.mixed_loss
        assert ours.individual_losses == reference.individual_losses
        assert ours.shots == reference.shots
        np.testing.assert_array_equal(ours.parameters, reference.parameters)


def _requests(num_qubits=3, batch=6, seed=2):
    ansatz = HardwareEfficientAnsatz(num_qubits, num_layers=2)
    rng = np.random.default_rng(seed)
    operators = [
        transverse_field_ising_chain(num_qubits, h) for h in (0.8, 1.0, 1.2)
    ]
    return [
        ExecutionRequest(
            ansatz.bound_circuit(rng.normal(size=ansatz.num_parameters)),
            operators[index % len(operators)],
        )
        for index in range(batch)
    ]


def _assert_estimates_identical(left, right):
    assert len(left) == len(right)
    for ours, reference in zip(left, right):
        assert ours.value == reference.value
        assert ours.variance == reference.variance
        assert ours.shots_used == reference.shots_used
        np.testing.assert_array_equal(ours.term_vector, reference.term_vector)


# -- estimator (backend payload) level -------------------------------------------


class TestBackendLevelParity:
    def test_batched_equals_per_request_equals_direct(self):
        requests = _requests()
        backend_results = StatevectorBackend().run_batch(requests, need_states=True)
        operators = [request.operator for request in requests]

        batched = SamplingEstimator(shots_per_term=SHOTS, seed=7)
        from_batch = batched.estimate_backend_results(backend_results, operators)

        looped = SamplingEstimator(shots_per_term=SHOTS, seed=7)
        from_loop = [
            looped.estimate_backend_result(result, operator)
            for result, operator in zip(backend_results, operators)
        ]
        direct = SamplingEstimator(shots_per_term=SHOTS, seed=7)
        from_direct = [
            direct.estimate(request.circuit, request.operator) for request in requests
        ]
        _assert_estimates_identical(from_batch, from_loop)
        _assert_estimates_identical(from_batch, from_direct)
        assert batched.total_shots == looped.total_shots == direct.total_shots
        assert (
            batched.total_evaluations
            == looped.total_evaluations
            == direct.total_evaluations
            == len(requests)
        )

    def test_chunked_batches_share_the_ordinal_stream(self):
        # Splitting one batch into consecutive sub-batches must not change
        # any request's draws: ordinals follow consumption order, not batch
        # position.
        requests = _requests(batch=5)
        backend_results = StatevectorBackend().run_batch(requests, need_states=True)
        operators = [request.operator for request in requests]

        whole = SamplingEstimator(shots_per_term=SHOTS, seed=1)
        reference = whole.estimate_backend_results(backend_results, operators)

        chunked = SamplingEstimator(shots_per_term=SHOTS, seed=1)
        halves = chunked.estimate_backend_results(
            backend_results[:2], operators[:2]
        ) + chunked.estimate_backend_results(backend_results[2:], operators[2:])
        _assert_estimates_identical(halves, reference)

    def test_missing_state_raises_actionably(self):
        requests = _requests(batch=1)
        results = StatevectorBackend().run_batch(requests)  # no states attached
        estimator = SamplingEstimator(shots_per_term=SHOTS, seed=0)
        with pytest.raises(ValueError, match="need_states"):
            estimator.estimate_backend_results(results, [requests[0].operator])


# -- scheduler level --------------------------------------------------------------


class TestSchedulerLevelParity:
    def _reference(self, tasks):
        estimator = SamplingEstimator(shots_per_term=SHOTS, seed=0)
        return _run_rounds(
            RoundScheduler(StatevectorBackend(), estimator),
            _clusters(tasks, estimator),
        )

    def test_max_batch_size_one_bit_identical(self):
        tasks = _tasks()
        reference = self._reference(tasks)
        estimator = SamplingEstimator(shots_per_term=SHOTS, seed=0)
        scheduler = RoundScheduler(StatevectorBackend(), estimator, max_batch_size=1)
        records = _run_rounds(scheduler, _clusters(tasks, estimator))
        _assert_records_identical(records, reference)
        assert scheduler.batches_executed > 0

    def test_per_request_fallback_path_bit_identical(self):
        # The scheduler's estimate() fallback (estimators advertising no
        # batched capability) must see the same ordinals, hence the same
        # draws, as the batched path.
        tasks = _tasks()
        reference = self._reference(tasks)
        estimator = PerRequestSampling(shots_per_term=SHOTS, seed=0)
        scheduler = RoundScheduler(StatevectorBackend(), estimator)
        records = _run_rounds(scheduler, _clusters(tasks, estimator))
        _assert_records_identical(records, reference)
        assert scheduler.batches_executed == 0  # the backend never ran

    @pytest.mark.parametrize("workers", (1, 2))
    def test_worker_counts_bit_identical(self, workers):
        tasks = _tasks()
        reference = self._reference(tasks)
        estimator = SamplingEstimator(shots_per_term=SHOTS, seed=0)
        with RoundScheduler(
            ParallelBackend(StatevectorBackend, workers=workers), estimator
        ) as scheduler:
            records = _run_rounds(scheduler, _clusters(tasks, estimator))
        _assert_records_identical(records, reference)
        assert scheduler.backend.states_shipped > 0

    def test_width_router_batches_sampling_on_the_dense_tier(self):
        tasks = _tasks()
        reference = self._reference(tasks)
        estimator = SamplingEstimator(shots_per_term=SHOTS, seed=0)
        scheduler = RoundScheduler(WidthRoutedBackend(), estimator)
        records = _run_rounds(scheduler, _clusters(tasks, estimator))
        _assert_records_identical(records, reference)
        assert scheduler.batches_executed > 0
        assert scheduler.backend.dense_requests > 0
        assert scheduler.backend.propagation_requests == 0


# -- controller level --------------------------------------------------------------


def _controller_run(tasks, ansatz, **config_kwargs):
    config = TreeVQAConfig(
        max_rounds=4,
        warmup_iterations=2,
        window_size=3,
        shots_per_pauli_term=SHOTS,
        estimator="sampling",
        seed=7,
        **config_kwargs,
    )
    return TreeVQAController(tasks, ansatz, config).run()


class TestControllerLevelParity:
    @pytest.mark.parametrize(
        "config_kwargs",
        (
            {"max_batch_size": 1},
            {"max_batch_size": 2},
            {"execution_workers": 2},
            {"backend": "auto"},
        ),
        ids=("batch1", "batch2", "workers2", "auto"),
    )
    def test_sampling_runs_bit_identical(self, config_kwargs):
        tasks = _tasks()
        ansatz = HardwareEfficientAnsatz(3, num_layers=1)
        reference = _controller_run(tasks, ansatz)
        result = _controller_run(tasks, ansatz, **config_kwargs)
        for ours, base in zip(result.outcomes, reference.outcomes):
            assert ours.energy == base.energy
        for name in (task.name for task in tasks):
            np.testing.assert_array_equal(
                result.trajectories[name].energies,
                reference.trajectories[name].energies,
            )

    def test_plan_cache_delta_in_result_metadata(self):
        tasks = _tasks(count=2)
        ansatz = HardwareEfficientAnsatz(3, num_layers=1)
        result = _controller_run(tasks, ansatz)
        delta = result.metadata["measurement_plan_cache"]
        assert delta["hits"] > 0
        assert delta["hits"] + delta["misses"] > 0
        assert delta["limit"] >= 1

    def test_plan_cache_size_knob_validated(self):
        with pytest.raises(ValueError, match="measurement_plan_cache_size"):
            TreeVQAConfig(measurement_plan_cache_size=0)


# -- fallback and routing ----------------------------------------------------------


class TestFallbackAndRouting:
    def test_states_fallback_warns_once_naming_the_backend(self):
        estimator = SamplingEstimator(shots_per_term=SHOTS, seed=0)
        scheduler = RoundScheduler(PauliPropagationBackend(), estimator)
        requests = _requests(batch=2)
        with pytest.warns(RuntimeWarning, match="'pauli_propagation'.*provides_states"):
            first = scheduler.execute(requests)
        assert len(first) == 2
        assert scheduler.batches_executed == 0
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # second execute must stay silent
            scheduler.execute(requests)

    def test_wide_sampling_request_raises_actionably_on_auto(self):
        backend = WidthRoutedBackend(dense_width_limit=2)
        with pytest.raises(ValueError, match="dense tier"):
            backend.run_batch(_requests(num_qubits=3, batch=1), need_states=True)

    def test_auto_without_states_still_routes_wide_requests(self):
        backend = WidthRoutedBackend(dense_width_limit=2)
        results = backend.run_batch(_requests(num_qubits=3, batch=2))
        assert len(results) == 2
        assert backend.propagation_requests == 2
