"""Scheduler- and controller-level parity for multi-process execution.

`execution_workers` must be invisible in the numbers: scheduler rounds and
full controller runs produce bit-identical records/trajectories for any
worker count, for mixed optimizer populations and circuit structures, under
exact, shot-noise (RNG streams are consumed per record in the parent, so
noisy trajectories match bit-for-bit too), and density-matrix estimation.
Plus the config surface: validation, the environment-variable override, the
worker stats in result metadata, and the crash fallback mid-round.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ansatz import HardwareEfficientAnsatz
from repro.core import RoundScheduler, TreeVQAConfig, TreeVQAController, VQACluster, VQATask
from repro.hamiltonians import transverse_field_ising_chain
from repro.quantum import ParallelBackend, StatevectorBackend
from repro.quantum.sampling import ExactEstimator, ShotNoiseEstimator


@pytest.fixture(autouse=True)
def _explicit_worker_counts(monkeypatch):
    """These tests pin worker counts explicitly; neutralise any ambient
    ``REPRO_EXECUTION_WORKERS`` (e.g. the CI parallel smoke) so the
    sequential reference runs really are sequential."""
    monkeypatch.delenv("REPRO_EXECUTION_WORKERS", raising=False)


def _tasks(count=4, num_qubits=3):
    fields = np.linspace(0.7, 1.3, count)
    return [
        VQATask(
            name=f"tfim@{field:.3f}",
            hamiltonian=transverse_field_ising_chain(num_qubits, float(field)),
            scan_parameter=float(field),
        )
        for field in fields
    ]


def _clusters(tasks, estimator, *, seed=0):
    """One singleton cluster per task, alternating SPSA and COBYLA and
    alternating ansatz depths — a mixed-structure, mixed-optimizer round."""
    clusters = []
    for index, task in enumerate(tasks):
        config = TreeVQAConfig(
            max_rounds=4,
            warmup_iterations=0,
            window_size=2,
            optimizer="spsa" if index % 2 == 0 else "cobyla",
            disable_automatic_splits=True,
            seed=seed,
        )
        ansatz = HardwareEfficientAnsatz(task.num_qubits, num_layers=1 + index % 2)
        clusters.append(
            VQACluster(
                cluster_id=f"C{index}",
                tasks=[task],
                ansatz=ansatz,
                optimizer=config.make_optimizer(),
                estimator=estimator,
                config=config,
                initial_parameters=ansatz.zero_parameters(),
            )
        )
    return clusters


def _run_rounds(scheduler, clusters, rounds=3):
    records = []
    for _ in range(rounds):
        records.extend(record for _, record in scheduler.run_round(clusters))
    return records


def _assert_records_identical(left, right):
    assert len(left) == len(right)
    for ours, reference in zip(left, right):
        assert ours.cluster_id == reference.cluster_id
        assert ours.mixed_loss == reference.mixed_loss
        assert ours.individual_losses == reference.individual_losses
        assert ours.shots == reference.shots
        np.testing.assert_array_equal(ours.parameters, reference.parameters)


class TestSchedulerParity:
    @pytest.mark.parametrize("workers", (1, 2, 4))
    def test_mixed_round_bit_identical(self, workers):
        tasks = _tasks()
        reference = _run_rounds(
            RoundScheduler(StatevectorBackend(), ExactEstimator(seed=0)),
            _clusters(tasks, ExactEstimator(seed=0)),
        )
        with RoundScheduler(
            ParallelBackend(StatevectorBackend, workers=workers),
            ExactEstimator(seed=0),
        ) as scheduler:
            records = _run_rounds(scheduler, _clusters(tasks, ExactEstimator(seed=0)))
        _assert_records_identical(records, reference)

    def test_shot_noise_rng_streams_are_worker_count_independent(self):
        # The estimator RNG lives in the parent and is consumed per record in
        # strict cluster order, so noisy trajectories are bit-identical too.
        tasks = _tasks()
        reference = _run_rounds(
            RoundScheduler(StatevectorBackend(), ShotNoiseEstimator(seed=11)),
            _clusters(tasks, ShotNoiseEstimator(seed=11)),
        )
        with RoundScheduler(
            ParallelBackend(StatevectorBackend, workers=2),
            ShotNoiseEstimator(seed=11),
        ) as scheduler:
            records = _run_rounds(scheduler, _clusters(tasks, ShotNoiseEstimator(seed=11)))
        _assert_records_identical(records, reference)

    def test_max_batch_size_chunks_compose_with_sharding(self):
        tasks = _tasks()
        reference = _run_rounds(
            RoundScheduler(StatevectorBackend(), ExactEstimator(seed=0)),
            _clusters(tasks, ExactEstimator(seed=0)),
        )
        with RoundScheduler(
            ParallelBackend(StatevectorBackend, workers=2),
            ExactEstimator(seed=0),
            max_batch_size=2,
        ) as scheduler:
            records = _run_rounds(scheduler, _clusters(tasks, ExactEstimator(seed=0)))
        _assert_records_identical(records, reference)

    def test_dead_worker_mid_run_keeps_round_identical(self):
        tasks = _tasks()
        reference = _run_rounds(
            RoundScheduler(StatevectorBackend(), ExactEstimator(seed=0)),
            _clusters(tasks, ExactEstimator(seed=0)),
        )
        backend = ParallelBackend(StatevectorBackend, workers=2)
        with RoundScheduler(backend, ExactEstimator(seed=0)) as scheduler:
            clusters = _clusters(tasks, ExactEstimator(seed=0))
            records = _run_rounds(scheduler, clusters, rounds=1)
            backend._pool[0].endpoint._process.kill()
            # The dead slot respawns (warning) and later rounds stay fully
            # parallel — no in-process fallback, identical records.
            with pytest.warns(RuntimeWarning, match="respawning"):
                records += _run_rounds(scheduler, clusters, rounds=2)
        _assert_records_identical(records, reference)
        assert backend.worker_respawns >= 1
        assert backend.fallback_batches == 0


def _controller_run(tasks, ansatz, *, workers=None, rounds=5, **config_kwargs):
    config = TreeVQAConfig(
        max_rounds=rounds,
        warmup_iterations=2,
        window_size=3,
        seed=7,
        execution_workers=workers,
        **config_kwargs,
    )
    return TreeVQAController(tasks, ansatz, config).run()


class TestControllerParity:
    @pytest.mark.parametrize("workers", (1, 2, 4))
    def test_exact_run_bit_identical(self, workers):
        tasks = _tasks()
        ansatz = HardwareEfficientAnsatz(3, num_layers=1)
        reference = _controller_run(tasks, ansatz)
        result = _controller_run(tasks, ansatz, workers=workers)
        for ours, base in zip(result.outcomes, reference.outcomes):
            assert ours.energy == base.energy
            assert ours.source == base.source
        for name in reference.trajectories:
            assert (
                result.trajectories[name].energies == reference.trajectories[name].energies
            )
            assert (
                result.trajectories[name].cumulative_shots
                == reference.trajectories[name].cumulative_shots
            )

    def test_shot_noise_run_bit_identical(self):
        tasks = _tasks()
        ansatz = HardwareEfficientAnsatz(3, num_layers=1)
        reference = _controller_run(tasks, ansatz, estimator="shot_noise")
        result = _controller_run(tasks, ansatz, workers=2, estimator="shot_noise")
        for ours, base in zip(result.outcomes, reference.outcomes):
            assert ours.energy == base.energy

    def test_density_matrix_run_bit_identical(self):
        tasks = _tasks(count=3, num_qubits=3)
        ansatz = HardwareEfficientAnsatz(3, num_layers=1)
        kwargs = dict(
            rounds=3,
            backend="density_matrix",
            estimator="density_matrix",
            noise_profile="hanoi",
        )
        reference = _controller_run(tasks, ansatz, **kwargs)
        result = _controller_run(tasks, ansatz, workers=2, **kwargs)
        for ours, base in zip(result.outcomes, reference.outcomes):
            assert ours.energy == base.energy

    def test_worker_stats_in_metadata(self):
        tasks = _tasks()
        ansatz = HardwareEfficientAnsatz(3, num_layers=1)
        result = _controller_run(tasks, ansatz, workers=2)
        stats = result.metadata["program_cache"]["workers"]
        assert stats["workers"] == 2
        assert stats["programs_shipped"] >= 1
        assert stats["fallback_batches"] == 0
        sequential = _controller_run(tasks, ansatz)
        assert "workers" not in sequential.metadata["program_cache"]

    def test_controller_close_releases_pool_and_run_autocloses(self):
        tasks = _tasks()
        ansatz = HardwareEfficientAnsatz(3, num_layers=1)
        config = TreeVQAConfig(
            max_rounds=2, warmup_iterations=0, window_size=2, seed=0, execution_workers=2
        )
        with TreeVQAController(tasks, ansatz, config) as controller:
            controller.run()
            assert controller.backend._pool is None  # run() released the pool
        controller.close()  # idempotent


class TestConfigSurface:
    def test_execution_workers_zero_rejected(self):
        with pytest.raises(ValueError, match="execution_workers"):
            TreeVQAConfig(execution_workers=0)

    def test_execution_workers_negative_rejected(self):
        with pytest.raises(ValueError, match="execution_workers"):
            TreeVQAConfig(execution_workers=-2)

    def test_default_is_in_process(self):
        config = TreeVQAConfig()
        assert config.execution_workers is None
        backend = config.make_backend()
        assert not isinstance(backend, ParallelBackend)

    def test_make_backend_wraps_when_workers_set(self):
        config = TreeVQAConfig(execution_workers=3)
        backend = config.make_backend()
        try:
            assert isinstance(backend, ParallelBackend)
            assert backend.workers == 3
            assert backend.name == "statevector"
        finally:
            backend.close()

    def test_environment_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTION_WORKERS", "2")
        assert TreeVQAConfig().execution_workers == 2
        # An explicit value wins over the environment.
        assert TreeVQAConfig(execution_workers=4).execution_workers == 4

    def test_environment_override_validated(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTION_WORKERS", "zero")
        with pytest.raises(ValueError, match="REPRO_EXECUTION_WORKERS"):
            TreeVQAConfig()
        monkeypatch.setenv("REPRO_EXECUTION_WORKERS", "-1")
        with pytest.raises(ValueError, match="REPRO_EXECUTION_WORKERS"):
            TreeVQAConfig()
        # 0 forces in-process execution (the env matrix's workers-off leg).
        monkeypatch.setenv("REPRO_EXECUTION_WORKERS", "0")
        assert TreeVQAConfig().execution_workers is None
