"""Tests for noise channels, backend profiles and density-matrix simulation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantum.circuit import QuantumCircuit
from repro.quantum.density_matrix import (
    DensityMatrix,
    DensityMatrixSimulator,
    apply_channel_to_density_batch,
)
from repro.quantum.noise import (
    BACKEND_PROFILES,
    NoiseModel,
    amplitude_damping_channel,
    bit_flip_channel,
    dephasing_channel,
    depolarizing_channel,
    get_backend_profile,
    global_depolarizing_expectation,
    two_qubit_depolarizing_channel,
)
from repro.quantum.pauli import PauliOperator
from repro.quantum.sampling import DensityMatrixEstimator
from repro.quantum.statevector import Statevector, StatevectorSimulator


class TestChannels:
    @pytest.mark.parametrize(
        "channel",
        [
            depolarizing_channel(0.1),
            amplitude_damping_channel(0.2),
            dephasing_channel(0.15),
            bit_flip_channel(0.3),
            two_qubit_depolarizing_channel(0.05),
        ],
    )
    def test_channels_are_trace_preserving(self, channel):
        assert channel.is_trace_preserving()

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            depolarizing_channel(1.5)
        with pytest.raises(ValueError):
            dephasing_channel(-0.1)

    def test_full_depolarizing_gives_maximally_mixed(self):
        channel = depolarizing_channel(1.0)
        rho = np.array([[1, 0], [0, 0]], dtype=complex)
        out = sum(k @ rho @ k.conj().T for k in channel.operators)
        np.testing.assert_allclose(out, np.eye(2) / 2, atol=1e-12)


#: Every channel constructor, by its single probability/gamma knob.
_CHANNEL_MAKERS = [
    depolarizing_channel,
    amplitude_damping_channel,
    dephasing_channel,
    bit_flip_channel,
    two_qubit_depolarizing_channel,
]

_probability = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
)


def _random_density_batch(seed: int, num_qubits: int, batch: int) -> np.ndarray:
    """A batch of valid (PSD, unit-trace) random mixed states."""
    rng = np.random.default_rng(seed)
    dim = 2 ** num_qubits
    raw = rng.normal(size=(batch, dim, dim)) + 1j * rng.normal(size=(batch, dim, dim))
    rhos = raw @ np.conj(np.swapaxes(raw, 1, 2))
    traces = np.trace(rhos, axis1=1, axis2=2).real
    return rhos / traces[:, None, None]


class TestChannelProperties:
    """Property-based guarantees over the whole channel-parameter space."""

    @pytest.mark.parametrize("maker", _CHANNEL_MAKERS)
    @settings(max_examples=50, deadline=None)
    @given(probability=_probability)
    def test_every_constructor_is_trace_preserving(self, maker, probability):
        assert maker(probability).is_trace_preserving()

    @settings(max_examples=30, deadline=None)
    @given(probability=_probability, seed=st.integers(0, 2**31 - 1))
    def test_superoperator_matches_kraus_sum(self, probability, seed):
        # The cached superoperator (the batched path's channel form) applies
        # the identical CPTP map as the explicit Σ K ρ K† definition.
        channel = depolarizing_channel(probability)
        rho = _random_density_batch(seed, num_qubits=1, batch=1)[0]
        explicit = sum(k @ rho @ k.conj().T for k in channel.operators)
        via_superop = (channel.superoperator() @ rho.reshape(-1)).reshape(2, 2)
        np.testing.assert_allclose(via_superop, explicit, atol=1e-12)

    @pytest.mark.parametrize("maker", _CHANNEL_MAKERS)
    @settings(max_examples=25, deadline=None)
    @given(probability=_probability, seed=st.integers(0, 2**31 - 1))
    def test_batched_application_preserves_physicality(self, maker, probability, seed):
        # Batch-wide channel application keeps every slice a valid mixed
        # state: unit trace, Hermitian, purity within [1/2^n, 1].
        channel = maker(probability)
        num_qubits = 2
        batch = 3
        rhos = _random_density_batch(seed, num_qubits, batch)
        tensor = rhos.reshape((batch,) + (2,) * (2 * num_qubits))
        qubits = (0, 1) if channel.num_qubits == 2 else (1,)
        out = apply_channel_to_density_batch(
            tensor, channel.superoperator(), qubits, num_qubits
        ).reshape(batch, 4, 4)
        for rho in out:
            assert np.trace(rho).real == pytest.approx(1.0, abs=1e-10)
            np.testing.assert_allclose(rho, rho.conj().T, atol=1e-10)
            purity = float(np.trace(rho @ rho).real)
            assert 1.0 / 2 ** num_qubits - 1e-10 <= purity <= 1.0 + 1e-10

    def test_is_noiseless_short_circuits_channel_application(self):
        model = NoiseModel()
        assert model.is_noiseless
        assert model.single_qubit_channels() == []
        assert model.two_qubit_channels() == []
        # A noiseless simulation therefore applies only the unitaries: the
        # prepared state stays exactly pure.
        circuit = QuantumCircuit(2).h(0).cx(0, 1).ry(0.4, 1)
        rho = DensityMatrixSimulator(model).run(circuit)
        assert rho.purity() == pytest.approx(1.0, abs=1e-12)

    def test_unknown_backend_profile_lists_available_names(self):
        with pytest.raises(ValueError, match="auckland.*cairo.*hanoi.*kolkata.*mumbai"):
            get_backend_profile("brisbane")


class TestNoiseModel:
    def test_noiseless_flag(self):
        assert NoiseModel().is_noiseless
        assert not NoiseModel(single_qubit_error=0.01).is_noiseless

    def test_channel_lists(self):
        model = NoiseModel(single_qubit_error=0.01, two_qubit_error=0.02, dephasing=0.001)
        assert len(model.single_qubit_channels()) == 2
        assert len(model.two_qubit_channels()) == 1

    def test_backend_profiles(self):
        assert set(BACKEND_PROFILES) == {"hanoi", "cairo", "mumbai", "kolkata", "auckland"}
        profile = get_backend_profile("Cairo")
        model = profile.to_noise_model()
        assert model.name == "cairo"
        assert 0 < model.two_qubit_error < 0.1
        with pytest.raises(ValueError):
            get_backend_profile("unknown")

    def test_global_depolarizing_expectation(self):
        assert global_depolarizing_expectation(1.0, 0.0, layers=0, error_rate=0.1) == 1.0
        contracted = global_depolarizing_expectation(1.0, 0.0, layers=3, error_rate=0.1)
        assert contracted == pytest.approx(0.9 ** 3)
        with pytest.raises(ValueError):
            global_depolarizing_expectation(1.0, 0.0, layers=-1, error_rate=0.1)


class TestDensityMatrix:
    def test_zero_state_and_purity(self):
        rho = DensityMatrix.zero_state(2)
        assert rho.trace() == pytest.approx(1.0)
        assert rho.purity() == pytest.approx(1.0)

    def test_from_statevector(self, bell_state):
        rho = DensityMatrix.from_statevector(bell_state)
        assert rho.purity() == pytest.approx(1.0)
        assert rho.fidelity_with_pure(bell_state) == pytest.approx(1.0)

    def test_invalid_shapes(self):
        with pytest.raises(ValueError):
            DensityMatrix(np.zeros((2, 3)))
        with pytest.raises(ValueError):
            DensityMatrix(np.zeros((3, 3)))

    def test_noiseless_simulation_matches_statevector(self, small_hamiltonian):
        circuit = QuantumCircuit(2).h(0).cx(0, 1).ry(0.3, 1)
        dm_value = DensityMatrixSimulator().expectation(circuit, small_hamiltonian)
        sv_value = StatevectorSimulator().run(circuit).expectation(small_hamiltonian)
        assert dm_value == pytest.approx(sv_value)

    def test_noise_reduces_purity_and_contracts_expectation(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1)
        operator = PauliOperator.from_terms([("ZZ", 1.0)])
        noisy = DensityMatrixSimulator(NoiseModel(single_qubit_error=0.05, two_qubit_error=0.05))
        rho = noisy.run(circuit)
        assert rho.purity() < 0.999
        assert abs(noisy.expectation(circuit, operator)) < 1.0
        assert rho.trace() == pytest.approx(1.0)

    def test_readout_error_contracts_z_terms(self):
        circuit = QuantumCircuit(1).x(0)
        operator = PauliOperator.from_terms([("Z", 1.0)])
        simulator = DensityMatrixSimulator(NoiseModel(readout_error=0.1))
        value = simulator.expectation(circuit, operator)
        assert value == pytest.approx(-(1 - 2 * 0.1))

    def test_unbound_circuit_rejected(self):
        from repro.quantum.circuit import Parameter

        circuit = QuantumCircuit(1).ry(Parameter("t"), 0)
        with pytest.raises(ValueError):
            DensityMatrixSimulator().run(circuit)

    def test_qubit_limit(self):
        with pytest.raises(ValueError):
            DensityMatrixSimulator().run(QuantumCircuit(13).h(0))


class TestDensityMatrixEstimator:
    def test_matches_exact_when_noiseless(self, small_hamiltonian):
        circuit = QuantumCircuit(2).ry(0.7, 0).cx(0, 1)
        estimator = DensityMatrixEstimator(NoiseModel(), shots_per_term=10)
        value = estimator.estimate(circuit, small_hamiltonian).value
        expected = StatevectorSimulator().run(circuit).expectation(small_hamiltonian)
        assert value == pytest.approx(expected)
        assert estimator.total_evaluations == 1

    def test_accepts_initial_state(self, small_hamiltonian):
        circuit = QuantumCircuit(2).ry(0.2, 0)
        initial = Statevector.computational_basis(2, "11")
        estimator = DensityMatrixEstimator(NoiseModel(), shots_per_term=10)
        value = estimator.estimate(circuit, small_hamiltonian, initial).value
        expected = initial.evolve(circuit).expectation(small_hamiltonian)
        assert value == pytest.approx(expected)

    def test_noise_changes_value(self, small_hamiltonian):
        circuit = QuantumCircuit(2).h(0).cx(0, 1)
        clean = DensityMatrixEstimator(NoiseModel(), shots_per_term=10)
        noisy = DensityMatrixEstimator(
            NoiseModel(single_qubit_error=0.05, two_qubit_error=0.08), shots_per_term=10
        )
        assert abs(noisy.estimate(circuit, small_hamiltonian).value) < abs(
            clean.estimate(circuit, small_hamiltonian).value
        )
