"""Tests for Pauli strings and Pauli-sum operators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantum.pauli import PauliOperator, PauliString, pauli_matrix, shots_per_evaluation

pauli_labels = st.text(alphabet="IXYZ", min_size=1, max_size=5)


class TestPauliString:
    def test_rejects_empty_label(self):
        with pytest.raises(ValueError):
            PauliString("")

    def test_rejects_invalid_characters(self):
        with pytest.raises(ValueError):
            PauliString("XQZ")

    def test_basic_properties(self):
        pauli = PauliString("XIZY")
        assert pauli.num_qubits == 4
        assert pauli.weight == 3
        assert pauli.support() == (0, 2, 3)
        assert not pauli.is_identity
        assert pauli[1] == "I"
        assert len(pauli) == 4

    def test_identity_constructor(self):
        identity = PauliString.identity(3)
        assert identity.label == "III"
        assert identity.is_identity

    def test_from_sparse(self):
        pauli = PauliString.from_sparse(4, {0: "X", 3: "Z"})
        assert pauli.label == "XIIZ"

    def test_from_sparse_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            PauliString.from_sparse(3, {5: "X"})

    def test_commutation_xx_zz(self):
        assert PauliString("XX").commutes_with(PauliString("ZZ"))
        assert not PauliString("XI").commutes_with(PauliString("ZI"))

    def test_qubit_wise_commutation(self):
        assert PauliString("XI").qubit_wise_commutes_with(PauliString("IX"))
        assert PauliString("XI").qubit_wise_commutes_with(PauliString("XX"))
        assert not PauliString("XX").qubit_wise_commutes_with(PauliString("ZZ"))

    def test_multiply_xy_gives_iz(self):
        phase, result = PauliString("X").multiply(PauliString("Y"))
        assert result.label == "Z"
        assert phase == 1j

    def test_multiply_matches_matrices(self):
        for a, b in [("XY", "YZ"), ("ZI", "XX"), ("YY", "XZ")]:
            phase, product = PauliString(a).multiply(PauliString(b))
            expected = PauliString(a).to_matrix() @ PauliString(b).to_matrix()
            np.testing.assert_allclose(phase * product.to_matrix(), expected, atol=1e-12)

    def test_mismatched_sizes_raise(self):
        with pytest.raises(ValueError):
            PauliString("XX").commutes_with(PauliString("X"))

    def test_expand_pads_identities(self):
        assert PauliString("XZ").expand(4).label == "XZII"
        with pytest.raises(ValueError):
            PauliString("XZ").expand(1)

    def test_hashable_and_equal(self):
        assert PauliString("XZ") == PauliString("XZ")
        assert len({PauliString("XZ"), PauliString("XZ"), PauliString("ZX")}) == 2

    @given(pauli_labels)
    @settings(max_examples=40, deadline=None)
    def test_self_product_is_identity(self, label):
        phase, result = PauliString(label).multiply(PauliString(label))
        assert result.is_identity
        assert phase == 1

    @given(pauli_labels, pauli_labels)
    @settings(max_examples=40, deadline=None)
    def test_commutation_is_symmetric(self, a, b):
        if len(a) != len(b):
            return
        assert PauliString(a).commutes_with(PauliString(b)) == PauliString(b).commutes_with(
            PauliString(a)
        )


class TestPauliMatrix:
    def test_known_matrices(self):
        np.testing.assert_allclose(pauli_matrix("X"), [[0, 1], [1, 0]])
        np.testing.assert_allclose(pauli_matrix("Z"), [[1, 0], [0, -1]])

    def test_unknown_label(self):
        with pytest.raises(ValueError):
            pauli_matrix("Q")


class TestPauliOperator:
    def test_from_terms_and_lookup(self):
        operator = PauliOperator.from_terms([("XX", 0.5), ("ZZ", -1.0)])
        assert operator.num_qubits == 2
        assert operator.num_terms == 2
        assert operator.coefficient("XX") == 0.5
        assert operator.coefficient("YY") == 0
        assert "ZZ" in operator

    def test_duplicate_terms_accumulate(self):
        operator = PauliOperator(2, {})
        operator = PauliOperator.from_terms([("XX", 0.5), ("XX", 0.25)])
        # dict-based constructor collapses duplicates before reaching the operator;
        # use addition to verify accumulation instead.
        total = PauliOperator.from_terms([("XX", 0.5)]) + PauliOperator.from_terms([("XX", 0.25)])
        assert total.coefficient("XX") == pytest.approx(0.75)

    def test_term_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            PauliOperator(2, {"XXX": 1.0})

    def test_arithmetic(self):
        a = PauliOperator.from_terms([("XI", 1.0), ("ZZ", 2.0)])
        b = PauliOperator.from_terms([("XI", -1.0), ("YY", 3.0)])
        combined = a + b
        assert combined.coefficient("XI") == 0
        assert combined.coefficient("YY") == 3.0
        scaled = a * 2.0
        assert scaled.coefficient("ZZ") == 4.0
        negated = -a
        assert negated.coefficient("XI") == -1.0
        halved = a / 2.0
        assert halved.coefficient("ZZ") == 1.0

    def test_compose_matches_matrices(self):
        a = PauliOperator.from_terms([("XI", 1.0), ("ZZ", 0.5)])
        b = PauliOperator.from_terms([("YI", 2.0), ("IX", -0.5)])
        product = a.compose(b)
        np.testing.assert_allclose(product.to_matrix(), a.to_matrix() @ b.to_matrix(), atol=1e-12)

    def test_is_hermitian(self):
        assert PauliOperator.from_terms([("XX", 1.0)]).is_hermitian()
        assert not PauliOperator.from_terms([("XX", 1.0j)]).is_hermitian()

    def test_l1_norm(self):
        operator = PauliOperator.from_terms([("XX", 3.0), ("ZZ", -4.0)])
        assert operator.l1_norm() == pytest.approx(7.0)

    def test_chop_and_simplify(self):
        operator = PauliOperator.from_terms([("XX", 1e-15), ("ZZ", 1.0)])
        assert operator.simplify().num_terms == 1

    def test_equals(self):
        a = PauliOperator.from_terms([("XX", 1.0), ("ZZ", 0.0)])
        b = PauliOperator.from_terms([("XX", 1.0)])
        assert a.equals(b)

    def test_coefficient_vector_and_padding(self):
        a = PauliOperator.from_terms([("XX", 1.0)])
        b = PauliOperator.from_terms([("ZZ", 2.0)])
        basis = PauliOperator.term_superset([a, b])
        assert len(basis) == 2
        vector = a.coefficient_vector(basis)
        assert sorted(vector.tolist()) == [0.0, 1.0]
        padded = a.padded(basis)
        assert padded.num_terms == 2

    def test_term_superset_is_deterministic(self):
        a = PauliOperator.from_terms([("XX", 1.0), ("ZI", 1.0)])
        b = PauliOperator.from_terms([("ZZ", 2.0), ("XX", 1.0)])
        assert PauliOperator.term_superset([a, b]) == PauliOperator.term_superset([b, a])

    def test_qubit_wise_commuting_groups_are_valid(self):
        operator = PauliOperator.from_terms(
            [("XX", 1.0), ("ZZ", 1.0), ("XI", 1.0), ("IZ", 1.0), ("YY", 1.0)]
        )
        groups = operator.group_qubit_wise_commuting()
        seen = set()
        for group in groups:
            for i, first in enumerate(group):
                seen.add(first)
                for second in group[i + 1 :]:
                    assert first.qubit_wise_commutes_with(second)
        assert len(seen) == operator.num_terms

    def test_identity_operator_matrix(self):
        operator = PauliOperator.identity(2, 3.0)
        np.testing.assert_allclose(operator.to_matrix(), 3.0 * np.eye(4))

    def test_expectation_against_dense(self, bell_state, small_hamiltonian):
        dense = small_hamiltonian.to_matrix()
        expected = np.real(bell_state.data.conj() @ dense @ bell_state.data)
        assert small_hamiltonian.expectation(bell_state) == pytest.approx(expected)

    def test_shots_per_evaluation_formula(self):
        operator = PauliOperator.from_terms([("XX", 3.0), ("ZZ", 1.0)])
        assert shots_per_evaluation(operator, 0.01) == pytest.approx((4.0 / 0.01) ** 2)
        with pytest.raises(ValueError):
            shots_per_evaluation(operator, 0.0)

    @given(st.lists(st.tuples(pauli_labels, st.floats(-2, 2)), min_size=1, max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_operator_matrix_is_hermitian_for_real_coefficients(self, terms):
        size = len(terms[0][0])
        terms = [(label, coeff) for label, coeff in terms if len(label) == size]
        if size > 3:
            return
        operator = PauliOperator.from_terms(terms, num_qubits=size)
        matrix = operator.to_matrix()
        np.testing.assert_allclose(matrix, matrix.conj().T, atol=1e-10)
