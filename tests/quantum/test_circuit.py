"""Tests for the circuit IR, gates, and parameter binding."""

from __future__ import annotations

import numpy as np
import pytest

from repro.quantum.circuit import Parameter, ParameterExpression, QuantumCircuit
from repro.quantum.gates import (
    GATE_REGISTRY,
    gate_matrix,
    gate_num_qubits,
    is_parametric,
    rx_matrix,
    ry_matrix,
    rz_matrix,
    rzz_matrix,
)


class TestGates:
    def test_all_registered_gates_are_unitary(self):
        rng = np.random.default_rng(0)
        for name, definition in GATE_REGISTRY.items():
            params = rng.uniform(-np.pi, np.pi, definition.num_params)
            matrix = gate_matrix(name, *params)
            dim = 2 ** definition.num_qubits
            np.testing.assert_allclose(
                matrix @ matrix.conj().T, np.eye(dim), atol=1e-10, err_msg=name
            )

    def test_rotation_identities(self):
        np.testing.assert_allclose(rx_matrix(0.0), np.eye(2), atol=1e-12)
        np.testing.assert_allclose(ry_matrix(2 * np.pi), -np.eye(2), atol=1e-12)
        np.testing.assert_allclose(rz_matrix(0.0), np.eye(2), atol=1e-12)
        np.testing.assert_allclose(rzz_matrix(0.0), np.eye(4), atol=1e-12)

    def test_parametric_flags(self):
        assert is_parametric("rx")
        assert not is_parametric("cx")
        assert gate_num_qubits("cx") == 2
        with pytest.raises(ValueError):
            gate_matrix("nope")
        with pytest.raises(ValueError):
            is_parametric("nope")

    def test_wrong_parameter_count(self):
        with pytest.raises(ValueError):
            gate_matrix("rx")
        with pytest.raises(ValueError):
            gate_matrix("h", 0.3)


class TestParameter:
    def test_parameters_are_distinct_objects(self):
        a, b = Parameter("theta"), Parameter("theta")
        assert a != b
        assert a == a

    def test_expressions(self):
        theta = Parameter("t")
        expression = 2.0 * theta
        assert isinstance(expression, ParameterExpression)
        assert expression.evaluate(0.5) == pytest.approx(1.0)
        shifted = theta + 1.0
        assert shifted.evaluate(0.25) == pytest.approx(1.25)
        negated = -theta
        assert negated.evaluate(0.3) == pytest.approx(-0.3)
        rescaled = expression * 0.5
        assert rescaled.evaluate(0.5) == pytest.approx(0.5)


class TestQuantumCircuit:
    def test_append_validates_gate_and_qubits(self):
        circuit = QuantumCircuit(2)
        with pytest.raises(ValueError):
            circuit.append("nope", [0])
        with pytest.raises(ValueError):
            circuit.append("cx", [0])
        with pytest.raises(ValueError):
            circuit.append("cx", [0, 5])
        with pytest.raises(ValueError):
            circuit.append("cx", [1, 1])
        with pytest.raises(ValueError):
            circuit.append("rx", [0], [])

    def test_gate_counts_and_depth(self):
        circuit = QuantumCircuit(3).h(0).cx(0, 1).cx(1, 2).rz(0.3, 2)
        assert circuit.count_gates() == {"h": 1, "cx": 2, "rz": 1}
        assert circuit.depth() == 4
        assert circuit.two_qubit_gate_count() == 2
        assert len(circuit) == 4

    def test_parameter_tracking_in_order(self):
        a, b = Parameter("a"), Parameter("b")
        circuit = QuantumCircuit(2).ry(a, 0).rz(b, 1).ry(a, 1)
        assert circuit.parameters == [a, b]
        assert circuit.num_parameters == 2
        assert not circuit.is_bound()

    def test_bind_with_sequence_and_mapping(self):
        a, b = Parameter("a"), Parameter("b")
        circuit = QuantumCircuit(1).ry(a, 0).rz(b, 0)
        bound = circuit.bind([0.1, 0.2])
        assert bound.is_bound()
        assert bound.instructions[0].params == (0.1,)
        bound2 = circuit.bind({a: 0.5, b: 0.7})
        assert bound2.instructions[1].params == (0.7,)

    def test_bind_missing_or_wrong_length(self):
        a, b = Parameter("a"), Parameter("b")
        circuit = QuantumCircuit(1).ry(a, 0).rz(b, 0)
        with pytest.raises(ValueError):
            circuit.bind([0.1])
        with pytest.raises(ValueError):
            circuit.bind({a: 0.1})

    def test_bind_evaluates_expressions(self):
        theta = Parameter("t")
        circuit = QuantumCircuit(1).rz(theta * 2.0, 0)
        bound = circuit.bind([0.3])
        assert bound.instructions[0].params[0] == pytest.approx(0.6)

    def test_compose_and_copy(self):
        first = QuantumCircuit(2).h(0)
        second = QuantumCircuit(2).cx(0, 1)
        combined = first.compose(second)
        assert [inst.gate for inst in combined.instructions] == ["h", "cx"]
        clone = combined.copy()
        assert len(clone) == 2
        with pytest.raises(ValueError):
            first.compose(QuantumCircuit(3))

    def test_invalid_qubit_count(self):
        with pytest.raises(ValueError):
            QuantumCircuit(0)
