"""Tests for the statevector simulator."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantum.circuit import QuantumCircuit
from repro.quantum.pauli import PauliString
from repro.quantum.statevector import Statevector, StatevectorSimulator, apply_pauli_string


class TestStatevectorBasics:
    def test_zero_state(self):
        state = Statevector.zero_state(3)
        assert state.num_qubits == 3
        assert state.data[0] == 1.0
        assert state.norm() == pytest.approx(1.0)

    def test_computational_basis_from_string_and_int(self):
        state = Statevector.computational_basis(3, "010")
        assert state.data[2] == 1.0
        state2 = Statevector.computational_basis(3, 5)
        assert state2.data[5] == 1.0
        with pytest.raises(ValueError):
            Statevector.computational_basis(2, "000")
        with pytest.raises(ValueError):
            Statevector.computational_basis(2, 7)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            Statevector(np.ones(3))

    def test_normalized(self):
        state = Statevector(np.array([3.0, 4.0, 0.0, 0.0]))
        assert state.normalized().norm() == pytest.approx(1.0)
        with pytest.raises(ValueError):
            Statevector(np.zeros(2)).normalized()

    def test_overlap_and_fidelity(self):
        zero = Statevector.zero_state(1)
        one = Statevector.computational_basis(1, "1")
        assert zero.overlap(one) == 0
        assert zero.fidelity(zero) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            zero.overlap(Statevector.zero_state(2))


class TestEvolution:
    def test_x_gate_flips(self):
        state = Statevector.zero_state(1).evolve(QuantumCircuit(1).x(0))
        assert abs(state.data[1]) == pytest.approx(1.0)

    def test_bell_state(self, bell_state):
        np.testing.assert_allclose(
            np.abs(bell_state.data), [1 / np.sqrt(2), 0, 0, 1 / np.sqrt(2)], atol=1e-12
        )

    def test_qubit_ordering_msb(self):
        # X on qubit 0 should set the most significant bit.
        state = Statevector.zero_state(2).evolve(QuantumCircuit(2).x(0))
        assert abs(state.data[2]) == pytest.approx(1.0)

    def test_unbound_circuit_rejected(self):
        from repro.quantum.circuit import Parameter

        circuit = QuantumCircuit(1).ry(Parameter("t"), 0)
        with pytest.raises(ValueError):
            Statevector.zero_state(1).evolve(circuit)

    def test_mismatched_qubits_rejected(self):
        with pytest.raises(ValueError):
            Statevector.zero_state(2).evolve(QuantumCircuit(3).h(0))

    def test_circuit_matches_dense_matrix_product(self, rng):
        circuit = QuantumCircuit(3)
        circuit.ry(0.4, 0).rz(0.9, 1).cx(0, 1).rx(1.2, 2).cx(1, 2).h(0)
        state = Statevector.zero_state(3).evolve(circuit)
        # Build the same unitary densely.
        from repro.quantum.gates import gate_matrix

        dense = np.eye(8, dtype=complex)
        for inst in circuit.instructions:
            matrix = gate_matrix(inst.gate, *inst.params)
            full = _embed_dense(matrix, inst.qubits, 3)
            dense = full @ dense
        expected = dense @ Statevector.zero_state(3).data
        np.testing.assert_allclose(state.data, expected, atol=1e-10)

    def test_norm_preserved(self, rng):
        circuit = QuantumCircuit(4)
        for _ in range(10):
            circuit.ry(rng.normal(), int(rng.integers(4)))
            a, b = rng.choice(4, size=2, replace=False)
            circuit.cx(int(a), int(b))
        state = Statevector.zero_state(4).evolve(circuit)
        assert state.norm() == pytest.approx(1.0)


def _embed_dense(matrix: np.ndarray, qubits: tuple[int, ...], num_qubits: int) -> np.ndarray:
    """Reference embedding used to validate the tensor-contraction path."""
    identity = np.eye(2 ** num_qubits, dtype=complex)
    tensor = identity.reshape((2,) * (2 * num_qubits))
    k = len(qubits)
    gate_tensor = matrix.reshape((2,) * (2 * k))
    tensor = np.tensordot(gate_tensor, tensor, axes=(list(range(k, 2 * k)), list(qubits)))
    tensor = np.moveaxis(tensor, list(range(k)), list(qubits))
    return tensor.reshape(2 ** num_qubits, 2 ** num_qubits)


class TestPauliApplication:
    def test_apply_pauli_matches_matrix(self, rng):
        for label in ("XIZ", "YYI", "ZXY", "III"):
            state = rng.normal(size=8) + 1j * rng.normal(size=8)
            state = state / np.linalg.norm(state)
            tensor = state.reshape(2, 2, 2)
            applied = apply_pauli_string(tensor, label).ravel()
            expected = PauliString(label).to_matrix() @ state
            np.testing.assert_allclose(applied, expected, atol=1e-12)

    def test_label_length_mismatch(self):
        with pytest.raises(ValueError):
            apply_pauli_string(np.zeros((2, 2)), "XXX")

    def test_expectation_of_z_on_zero(self):
        state = Statevector.zero_state(2)
        assert state.pauli_expectation("ZI") == pytest.approx(1.0)
        assert state.pauli_expectation("XI") == pytest.approx(0.0)

    def test_expectation_matches_dense(self, rng, small_hamiltonian):
        data = rng.normal(size=4) + 1j * rng.normal(size=4)
        state = Statevector(data / np.linalg.norm(data))
        dense = small_hamiltonian.to_matrix()
        expected = float(np.real(state.data.conj() @ dense @ state.data))
        assert state.expectation(small_hamiltonian) == pytest.approx(expected)

    @given(st.integers(0, 3))
    @settings(max_examples=8, deadline=None)
    def test_single_qubit_z_expectation_on_basis_states(self, index):
        state = Statevector.computational_basis(2, index)
        bits = format(index, "02b")
        for qubit in range(2):
            expected = 1.0 if bits[qubit] == "0" else -1.0
            label = "".join("Z" if q == qubit else "I" for q in range(2))
            assert state.pauli_expectation(label) == pytest.approx(expected)


class TestSamplingAndSimulator:
    def test_sample_counts_distribution(self, bell_state, rng):
        counts = bell_state.sample_counts(2000, rng)
        assert set(counts) <= {"00", "11"}
        assert sum(counts.values()) == 2000
        assert abs(counts.get("00", 0) - 1000) < 150

    def test_sample_counts_validates_shots(self, bell_state, rng):
        with pytest.raises(ValueError):
            bell_state.sample_counts(0, rng)

    def test_sample_counts_requires_explicit_rng(self, bell_state):
        with pytest.raises(TypeError, match="explicit np.random.Generator"):
            bell_state.sample_counts(10, None)

    def test_simulator_counts_runs(self):
        simulator = StatevectorSimulator()
        simulator.run(QuantumCircuit(1).h(0))
        simulator.run(QuantumCircuit(1).x(0))
        assert simulator.circuits_run == 2

    def test_simulator_expectation(self, small_hamiltonian):
        simulator = StatevectorSimulator()
        value = simulator.expectation(QuantumCircuit(2).h(0).cx(0, 1), small_hamiltonian)
        assert value == pytest.approx(1.0)
