"""Parity tests: the compiled engine must match the naive per-term path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.quantum import QuantumCircuit
from repro.quantum.engine import CompiledPauliOperator, compiled_pauli_operator
from repro.quantum.pauli import PAULI_LABELS, PauliOperator, PauliString
from repro.quantum.statevector import Statevector


def random_state(num_qubits: int, rng: np.random.Generator) -> Statevector:
    amplitudes = rng.normal(size=2 ** num_qubits) + 1j * rng.normal(size=2 ** num_qubits)
    return Statevector(amplitudes / np.linalg.norm(amplitudes))


def random_operator(
    num_qubits: int, num_terms: int, rng: np.random.Generator
) -> PauliOperator:
    labels = set()
    while len(labels) < num_terms:
        labels.add("".join(rng.choice(list(PAULI_LABELS), size=num_qubits)))
    coefficients = rng.normal(size=num_terms)
    return PauliOperator(num_qubits, dict(zip(sorted(labels), coefficients)))


class TestEngineParity:
    @pytest.mark.parametrize("num_qubits", [1, 2, 3, 4, 6, 8])
    def test_matches_naive_pauli_expectation(self, num_qubits):
        rng = np.random.default_rng(num_qubits)
        for _ in range(3):
            operator = random_operator(num_qubits, min(12, 4 ** num_qubits), rng)
            state = random_state(num_qubits, rng)
            engine = compiled_pauli_operator(operator)
            vector = engine.expectation_values(state)
            naive = np.array([state.pauli_expectation(p) for p in engine.paulis])
            np.testing.assert_allclose(vector, naive, atol=1e-10)

    @pytest.mark.parametrize(
        "label", ["X", "Y", "Z", "I", "XY", "YZ", "ZI", "YY", "XYZ", "ZYX", "III"]
    )
    def test_single_term_matches_dense_matrix(self, label):
        rng = np.random.default_rng(hash(label) % 2 ** 32)
        state = random_state(len(label), rng)
        engine = CompiledPauliOperator([label])
        expected = np.vdot(state.data, PauliString(label).to_matrix() @ state.data).real
        assert engine.expectation_values(state)[0] == pytest.approx(expected, abs=1e-10)

    def test_matches_dense_operator_expectation(self):
        rng = np.random.default_rng(9)
        operator = random_operator(4, 20, rng)
        state = random_state(4, rng)
        engine = compiled_pauli_operator(operator)
        dense = np.vdot(state.data, operator.to_matrix() @ state.data).real
        assert engine.expectation(state) == pytest.approx(dense, abs=1e-10)
        assert state.expectation(operator) == pytest.approx(dense, abs=1e-10)

    def test_density_path_matches_statevector_path(self):
        rng = np.random.default_rng(11)
        operator = random_operator(3, 15, rng)
        state = random_state(3, rng)
        engine = compiled_pauli_operator(operator)
        rho = np.outer(state.data, state.data.conj())
        np.testing.assert_allclose(
            engine.expectation_values_density(rho),
            engine.expectation_values(state),
            atol=1e-10,
        )

    def test_batched_matches_single(self):
        rng = np.random.default_rng(13)
        operator = random_operator(4, 10, rng)
        engine = compiled_pauli_operator(operator)
        states = [random_state(4, rng) for _ in range(5)]
        batch = engine.expectation_values_batch(states)
        assert batch.shape == (5, engine.num_terms)
        for row, state in zip(batch, states):
            np.testing.assert_allclose(row, engine.expectation_values(state), atol=1e-12)

    def test_identity_term_is_one_on_normalized_states(self):
        rng = np.random.default_rng(17)
        engine = CompiledPauliOperator(["II", "ZZ"])
        state = random_state(2, rng)
        values = engine.expectation_values(state)
        assert values[0] == pytest.approx(1.0)
        np.testing.assert_array_equal(engine.identity_mask, [True, False])
        np.testing.assert_array_equal(engine.weights, [0, 2])


class TestEngineApi:
    def test_term_order_follows_operator_insertion_order(self):
        operator = PauliOperator.from_terms([("ZZ", 1.0), ("XI", 0.5), ("IY", -0.25)])
        engine = compiled_pauli_operator(operator)
        assert [p.label for p in engine.paulis] == ["ZZ", "XI", "IY"]
        np.testing.assert_allclose(engine.coefficients, [1.0, 0.5, -0.25])

    def test_zero_coefficient_terms_are_compiled(self):
        operator = PauliOperator(2, {"ZZ": 0.0, "XX": 1.0})
        engine = compiled_pauli_operator(operator)
        assert engine.num_terms == 2
        state = Statevector.zero_state(2)
        assert engine.expectation_values(state)[0] == pytest.approx(1.0)  # <00|ZZ|00>

    def test_cache_reuses_and_invalidates(self):
        operator = PauliOperator.from_terms([("ZZ", 1.0), ("XX", 0.5)])
        engine = compiled_pauli_operator(operator)
        assert compiled_pauli_operator(operator) is engine
        operator.chop(0.6)  # in-place mutation drops the XX term
        recompiled = compiled_pauli_operator(operator)
        assert recompiled is not engine
        assert recompiled.num_terms == 1

    def test_bad_inputs_rejected(self):
        with pytest.raises(ValueError):
            CompiledPauliOperator([])  # no num_qubits
        with pytest.raises(ValueError):
            CompiledPauliOperator(["XI", "X"])  # mismatched qubit counts
        with pytest.raises(ValueError):
            CompiledPauliOperator(["XX"], coefficients=[1.0, 2.0])
        engine = CompiledPauliOperator(["XX"])
        with pytest.raises(ValueError):
            engine.expectation_values(np.ones(8))  # wrong dimension
        with pytest.raises(ValueError):
            engine.expectation_values_density(np.ones((2, 2)))

    def test_empty_engine(self):
        engine = CompiledPauliOperator([], num_qubits=2)
        assert engine.num_terms == 0
        assert engine.expectation_values(Statevector.zero_state(2)).shape == (0,)
        assert engine.expectation(Statevector.zero_state(2)) == 0.0

    def test_estimator_term_vector_alignment(self):
        # The estimator contract: term_vector follows the operator's order.
        from repro.quantum.sampling import ExactEstimator

        operator = PauliOperator.from_terms([("ZZ", 0.7), ("XI", -0.4), ("II", 0.5)])
        circuit = QuantumCircuit(2).ry(0.3, 0).cx(0, 1)
        result = ExactEstimator().estimate(circuit, operator)
        assert result.term_basis == compiled_pauli_operator(operator).paulis
        state = Statevector.zero_state(2).evolve(circuit)
        for pauli, value in zip(result.term_basis, result.term_vector):
            assert value == pytest.approx(state.pauli_expectation(pauli), abs=1e-10)
        assert result.value == pytest.approx(
            sum(c.real * v for c, v in zip([0.7, -0.4, 0.5], result.term_vector))
        )
