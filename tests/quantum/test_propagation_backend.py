"""Tests for the vectorized Pauli-propagation backend and width routing.

Property tests pin the three contracts the backend is allowed to claim:

* with truncation disabled, propagation matches the dense statevector path
  to 1e-10 over every gate in the registry;
* Clifford-only circuits propagate without branching and with exact ±1
  coefficients (the integer-snapped structure tables);
* the batched backend is bit-identical to per-request compiled runs, and
  bit-identical across batch sizes and worker counts through the controller.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ansatz import HardwareEfficientAnsatz
from repro.core.config import TreeVQAConfig
from repro.core.controller import TreeVQAController
from repro.core.task import VQATask
from repro.quantum import (
    CompiledPropagation,
    ExecutionRequest,
    PauliOperator,
    PauliPropagationBackend,
    PauliPropagationConfig,
    QuantumCircuit,
    Statevector,
    StatevectorBackend,
    WidthRoutedBackend,
    clear_conjugation_cache,
    conjugation_cache_stats,
)
from repro.quantum.engine import compiled_pauli_operator
from repro.quantum.gates import GATE_REGISTRY

#: Gates whose static conjugation tables are single-branch (Clifford group).
_CLIFFORD_GATES = ("x", "y", "z", "h", "s", "sdg", "sx", "cx", "cz", "swap")


def _untruncated(num_qubits: int) -> PauliPropagationConfig:
    return PauliPropagationConfig(
        max_weight=num_qubits, coefficient_threshold=0.0, max_terms=10**7
    )


def _random_operator(num_qubits: int, num_terms: int, rng) -> PauliOperator:
    labels = set()
    while len(labels) < num_terms:
        labels.add("".join(rng.choice(list("IXYZ"), size=num_qubits)))
    return PauliOperator(
        num_qubits, dict(zip(sorted(labels), rng.normal(size=num_terms)))
    )


def _all_gates_circuit(num_qubits: int, rng) -> QuantumCircuit:
    """A bound circuit containing every registry gate once, in random order."""
    names = list(GATE_REGISTRY)
    rng.shuffle(names)
    circuit = QuantumCircuit(num_qubits)
    for name in names:
        spec = GATE_REGISTRY[name]
        qubits = rng.choice(num_qubits, size=spec.num_qubits, replace=False)
        params = rng.uniform(-math.pi, math.pi, size=spec.num_params)
        circuit.append(name, [int(q) for q in qubits], [float(p) for p in params])
    return circuit


def _random_bits(num_qubits: int, rng) -> str:
    return "".join(rng.choice(["0", "1"], size=num_qubits))


def _dense_expectation(circuit, operator, bits) -> float:
    state = Statevector.computational_basis(circuit.num_qubits, bits).evolve(circuit)
    engine = compiled_pauli_operator(operator)
    return float(engine.coefficients @ engine.expectation_values(state))


class TestCompiledPropagationParity:
    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_untruncated_matches_statevector_over_all_registry_gates(self, seed):
        rng = np.random.default_rng(seed)
        num_qubits = 3
        circuit = _all_gates_circuit(num_qubits, rng)
        operator = _random_operator(num_qubits, 6, rng)
        bits = _random_bits(num_qubits, rng)
        compiled, row = CompiledPropagation.for_circuit(
            circuit, operator, _untruncated(num_qubits)
        )
        value = compiled.expectation(row, bits)
        assert value == pytest.approx(
            _dense_expectation(circuit, operator, bits), abs=1e-10
        )

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_clifford_circuits_never_branch_and_stay_exact(self, seed):
        rng = np.random.default_rng(seed)
        num_qubits = 4
        circuit = QuantumCircuit(num_qubits)
        for _ in range(20):
            name = str(rng.choice(_CLIFFORD_GATES))
            spec = GATE_REGISTRY[name]
            qubits = rng.choice(num_qubits, size=spec.num_qubits, replace=False)
            circuit.append(name, [int(q) for q in qubits])
        label = "".join(rng.choice(list("IXYZ"), size=num_qubits))
        if set(label) == {"I"}:
            label = "Z" + label[1:]
        operator = PauliOperator(num_qubits, {label: 1.0})
        compiled, row = CompiledPropagation.for_circuit(
            circuit, operator, _untruncated(num_qubits)
        )
        outcome = compiled.run(row)
        # A Clifford conjugation is a signed permutation of the Pauli group:
        # one term in, one term out, coefficient exactly ±1.
        assert outcome.peak_terms == 1
        assert outcome.final_terms == 1
        labels, coeffs = compiled.propagate_terms(row)
        assert len(labels) == 1
        assert abs(float(coeffs[0, 0])) == 1.0
        # The evaluated value is an exact integer (the dense reference only
        # agrees to float precision — its H gates carry 1/sqrt(2) rounding).
        bits = _random_bits(num_qubits, rng)
        value = compiled.expectation(row, bits)
        assert value in (-1.0, 0.0, 1.0)
        assert value == pytest.approx(
            _dense_expectation(circuit, operator, bits), abs=1e-10
        )

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_batched_backend_bit_identical_to_per_request_runs(self, seed):
        rng = np.random.default_rng(seed)
        num_qubits = 4
        ansatz = HardwareEfficientAnsatz(num_qubits, num_layers=2)
        operator = _random_operator(num_qubits, 8, rng)
        program = ansatz.program()
        rows = [
            rng.normal(0.0, 0.7, size=ansatz.num_parameters) for _ in range(5)
        ]
        requests = [
            ExecutionRequest(
                circuit=None,
                operator=operator,
                initial_bitstring="0" * num_qubits,
                program=program,
                parameters=row,
            )
            for row in rows
        ]
        backend = PauliPropagationBackend()
        results = backend.run_batch(requests)
        compiled = CompiledPropagation(
            program, operator, backend.config, per_term=True
        )
        for row, result in zip(rows, results):
            outcome = compiled.run(row, "0" * num_qubits)
            expected = outcome.values.copy()
            engine = compiled_pauli_operator(operator)
            expected[engine.identity_mask] = 1.0
            np.testing.assert_array_equal(result.term_vector, expected)
            assert result.metadata == outcome.as_metadata()


class TestPauliPropagationBackend:
    def _requests(self, num_qubits=4, batch=4, seed=0):
        rng = np.random.default_rng(seed)
        ansatz = HardwareEfficientAnsatz(num_qubits, num_layers=2)
        operator = _random_operator(num_qubits, 8, rng)
        return [
            ExecutionRequest(
                circuit=None,
                operator=operator,
                initial_bitstring="0" * num_qubits,
                program=ansatz.program(),
                parameters=rng.normal(0.0, 0.7, size=ansatz.num_parameters),
                tag=index,
            )
            for index in range(batch)
        ]

    def test_results_carry_order_tags_and_metadata(self):
        requests = self._requests()
        results = PauliPropagationBackend().run_batch(requests)
        assert [result.tag for result in results] == [0, 1, 2, 3]
        for result in results:
            assert result.backend_name == "pauli_propagation"
            assert result.state is None
            assert set(result.metadata) == {
                "final_terms",
                "peak_terms",
                "truncated_weight_terms",
                "truncated_coefficient_terms",
            }

    def test_need_states_is_rejected(self):
        backend = PauliPropagationBackend()
        with pytest.raises(ValueError, match="statevector"):
            backend.run_batch(self._requests(batch=1), need_states=True)

    def test_matches_statevector_backend_when_untruncated(self):
        requests = self._requests()
        loose = PauliPropagationBackend(_untruncated(4))
        dense = StatevectorBackend()
        for ours, reference in zip(
            loose.run_batch(requests), dense.run_batch(requests)
        ):
            np.testing.assert_allclose(
                ours.term_vector, reference.term_vector, rtol=0, atol=1e-10
            )
            assert ours.term_basis == reference.term_basis

    def test_truncation_counters_aggregate(self):
        backend = PauliPropagationBackend(
            PauliPropagationConfig(max_weight=1, coefficient_threshold=1e-3)
        )
        backend.run_batch(self._requests())
        stats = backend.propagation_stats()
        assert stats["requests"] == 4
        assert stats["truncated_weight_terms"] > 0


def _tfim_tasks(num_qubits=4, fields=(0.5, 1.0)):
    tasks = []
    for g in fields:
        terms = [
            (
                "".join("Z" if i in (j, j + 1) else "I" for i in range(num_qubits)),
                -1.0,
            )
            for j in range(num_qubits - 1)
        ]
        terms += [
            ("".join("X" if i == j else "I" for i in range(num_qubits)), -g)
            for j in range(num_qubits)
        ]
        tasks.append(
            VQATask(
                name=f"tfim@{g}",
                hamiltonian=PauliOperator.from_terms(terms, num_qubits=num_qubits),
            )
        )
    return tasks


def _run_controller(**config_kwargs):
    config = TreeVQAConfig(max_rounds=3, seed=5, **config_kwargs)
    ansatz = HardwareEfficientAnsatz(4, num_layers=2)
    result = TreeVQAController(_tfim_tasks(), ansatz, config).run()
    return result


class TestControllerIntegration:
    def test_bit_identical_across_batch_sizes(self):
        energies = {}
        for batch_size in (None, 1, 3):
            result = _run_controller(
                backend="pauli_propagation", max_batch_size=batch_size
            )
            energies[batch_size] = [outcome.energy for outcome in result.outcomes]
        assert energies[None] == energies[1] == energies[3]

    def test_bit_identical_across_worker_counts_with_metadata(self):
        in_process = _run_controller(backend="pauli_propagation")
        pooled = _run_controller(backend="pauli_propagation", execution_workers=2)
        assert [o.energy for o in in_process.outcomes] == [
            o.energy for o in pooled.outcomes
        ]
        # Truncation metadata rides the wire, so the totals are identical
        # whether the propagation ran in-process or in the worker pool.
        for result in (in_process, pooled):
            propagation = result.metadata["propagation"]
            assert propagation["requests"] > 0
            assert "conjugation_cache" in propagation
        assert (
            in_process.metadata["propagation"]["requests"]
            == pooled.metadata["propagation"]["requests"]
        )

    def test_matches_statevector_controller_when_untruncated(self):
        dense = _run_controller(backend="statevector")
        propagated = _run_controller(
            backend="pauli_propagation",
            propagation_max_weight=4,
            propagation_coefficient_threshold=0.0,
        )
        np.testing.assert_allclose(
            [o.energy for o in dense.outcomes],
            [o.energy for o in propagated.outcomes],
            rtol=0,
            atol=1e-10,
        )

    def test_auto_backend_matches_statevector_below_width_limit(self):
        dense = _run_controller(backend="statevector")
        routed = _run_controller(backend="auto")
        assert [o.energy for o in dense.outcomes] == [
            o.energy for o in routed.outcomes
        ]


class TestWidthRoutedBackend:
    def test_routes_by_request_width(self):
        rng = np.random.default_rng(2)
        backend = WidthRoutedBackend(dense_width_limit=3)
        ansatz = HardwareEfficientAnsatz(4, num_layers=1)
        operator = _random_operator(4, 4, rng)
        wide = ExecutionRequest(
            circuit=None,
            operator=operator,
            initial_bitstring="0000",
            program=ansatz.program(),
            parameters=rng.normal(size=ansatz.num_parameters),
        )
        narrow_ansatz = HardwareEfficientAnsatz(2, num_layers=1)
        narrow = ExecutionRequest(
            circuit=None,
            operator=_random_operator(2, 3, rng),
            initial_bitstring="00",
            program=narrow_ansatz.program(),
            parameters=rng.normal(size=narrow_ansatz.num_parameters),
        )
        results = backend.run_batch([wide, narrow, wide])
        assert backend.dense_requests == 1
        assert backend.propagation_requests == 2
        assert [result.backend_name for result in results] == [
            "pauli_propagation",
            "statevector",
            "pauli_propagation",
        ]
        np.testing.assert_array_equal(
            results[0].term_vector, results[2].term_vector
        )

    def test_narrow_results_match_pure_dense_backend(self):
        rng = np.random.default_rng(3)
        ansatz = HardwareEfficientAnsatz(3, num_layers=2)
        operator = _random_operator(3, 5, rng)
        requests = [
            ExecutionRequest(
                circuit=None,
                operator=operator,
                initial_bitstring="000",
                program=ansatz.program(),
                parameters=rng.normal(size=ansatz.num_parameters),
            )
            for _ in range(3)
        ]
        routed = WidthRoutedBackend().run_batch(requests)
        dense = StatevectorBackend().run_batch(requests)
        for ours, reference in zip(routed, dense):
            np.testing.assert_array_equal(ours.term_vector, reference.term_vector)


class TestConjugationCache:
    def test_fresh_angles_hit_the_structure_cache(self):
        clear_conjugation_cache()
        rng = np.random.default_rng(7)
        num_qubits = 3
        operator = _random_operator(num_qubits, 4, rng)
        config = _untruncated(num_qubits)
        for _ in range(3):
            circuit = QuantumCircuit(num_qubits)
            for qubit in range(num_qubits):
                # Fresh random angles every circuit: the legacy per-params
                # cache key guaranteed a miss here; the split cache hits the
                # per-gate-name structure after the first build.
                circuit.append("rx", [qubit], [float(rng.uniform(-3, 3))])
                circuit.append("rzz", [qubit, (qubit + 1) % num_qubits], [
                    float(rng.uniform(-3, 3))
                ])
            compiled, row = CompiledPropagation.for_circuit(circuit, operator, config)
            compiled.run(row)
        stats = conjugation_cache_stats()
        # Two structures built (rx, rzz); every subsequent lookup is a hit.
        assert stats["misses"] == 2
        assert stats["hits"] >= 4
        assert stats["size"] == 2

    def test_clear_resets_counters(self):
        clear_conjugation_cache()
        stats = conjugation_cache_stats()
        assert stats["hits"] == stats["misses"] == stats["evictions"] == 0
        assert stats["size"] == 0


class TestConfigKnobs:
    def test_knobs_require_a_propagation_capable_backend(self):
        with pytest.raises(ValueError, match="propagation"):
            TreeVQAConfig(backend="statevector", propagation_max_weight=4)

    def test_invalid_knob_values_are_rejected(self):
        with pytest.raises(ValueError):
            TreeVQAConfig(backend="pauli_propagation", propagation_max_weight=0)
        with pytest.raises(ValueError):
            TreeVQAConfig(
                backend="pauli_propagation", propagation_coefficient_threshold=-1.0
            )
        with pytest.raises(ValueError):
            TreeVQAConfig(backend="pauli_propagation", propagation_max_terms=0)

    def test_resolved_config_applies_overrides(self):
        config = TreeVQAConfig(
            backend="auto",
            propagation_max_weight=5,
            propagation_max_terms=1234,
        )
        resolved = config.resolve_propagation_config()
        assert resolved.max_weight == 5
        assert resolved.max_terms == 1234
        # Unset knobs keep the paper defaults.
        assert resolved.coefficient_threshold == pytest.approx(1e-8)


class TestWideTaskGuards:
    def test_error_and_fidelity_are_nan_without_feasible_reference(self):
        operator = PauliOperator(50, {"Z" + "I" * 49: 1.0})
        task = VQATask(name="wide", hamiltonian=operator)
        assert math.isnan(task.error(-1.0))
        assert math.isnan(task.fidelity(-1.0))

    def test_explicit_reference_energy_still_works_when_wide(self):
        operator = PauliOperator(50, {"Z" + "I" * 49: 1.0})
        task = VQATask(name="wide", hamiltonian=operator, reference_energy=-1.0)
        assert task.fidelity(-1.0) == 1.0
