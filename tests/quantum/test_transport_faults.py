"""Deterministic chaos tests for the worker transport and shard rerouting.

Every test injects faults through
:class:`~repro.quantum.transport.FaultInjectingTransport` at exact
(worker, op, occurrence) coordinates — no timing races, no flaky kills — and
asserts the one contract that matters: **merged results are bit-identical to
a sequential in-process run no matter which workers crash, hang, garble, or
stall, at every worker count**.  The fault matrix covers every fault point of
the dispatch loop (spawn, first send, Nth send, mid-recv, last recv); on top
of it sit the self-healing, retry-budget, deadline, and zombie-reaping
regressions, and a Hypothesis sweep over random fault schedules × batch
shapes.

The suite carries the ``chaos`` marker (CI runs it as its own fast-tier step
with a per-test timeout, so a reintroduced deadlock fails loudly instead of
hanging the job).
"""

from __future__ import annotations

import time
import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ansatz import HardwareEfficientAnsatz
from repro.quantum import (
    ExecutionRequest,
    Fault,
    FaultInjectingTransport,
    LocalProcessTransport,
    ParallelBackend,
    ParallelExecutionError,
    PauliOperator,
    StatevectorBackend,
    compile_circuit_program,
)
from repro.quantum.transport import LocalProcessEndpoint

pytestmark = [pytest.mark.chaos, pytest.mark.timeout(120)]

WORKER_COUNTS = (1, 2, 4)

#: Generous reply deadline: hang faults sleep exactly this long, everything
#: else replies in milliseconds, so tests stay fast *and* never reap a
#: healthy-but-slow worker on a loaded CI runner.
TIMEOUT_S = 5.0


def _operator(num_qubits: int, num_terms: int, seed: int) -> PauliOperator:
    rng = np.random.default_rng(seed)
    labels = set()
    while len(labels) < num_terms:
        labels.add("".join(rng.choice(list("IXYZ"), size=num_qubits)))
    return PauliOperator(num_qubits, dict(zip(sorted(labels), rng.normal(size=num_terms))))


def _requests(batch=8, seed=0, num_qubits=3, layers=2):
    rng = np.random.default_rng(seed)
    ansatz = HardwareEfficientAnsatz(num_qubits, num_layers=layers)
    program = compile_circuit_program(ansatz.circuit)
    operator = _operator(num_qubits, 6, seed)
    return [
        ExecutionRequest(
            None,
            operator,
            initial_bitstring="0" * num_qubits,
            tag=("req", index),
            program=program,
            parameters=rng.normal(0.0, 0.7, size=ansatz.num_parameters),
        )
        for index in range(batch)
    ]


def _mixed_requests(seed=1):
    """Two program structures plus bound-circuit requests in one batch."""
    rng = np.random.default_rng(seed)
    shallow = HardwareEfficientAnsatz(3, num_layers=1)
    deep = HardwareEfficientAnsatz(3, num_layers=3)
    operator = _operator(3, 5, seed)
    requests = []
    for index, ansatz in enumerate((shallow, deep, shallow, deep, shallow, deep)):
        point = rng.normal(size=ansatz.num_parameters)
        if index % 3 == 2:
            requests.append(
                ExecutionRequest(ansatz.bound_circuit(point), operator, tag=index)
            )
        else:
            requests.append(
                ExecutionRequest(
                    None,
                    operator,
                    tag=index,
                    program=compile_circuit_program(ansatz.circuit),
                    parameters=point,
                )
            )
    return requests


def _assert_results_identical(ours, reference):
    assert len(ours) == len(reference)
    for result, expected in zip(ours, reference):
        np.testing.assert_array_equal(result.term_vector, expected.term_vector)
        assert result.term_basis == expected.term_basis
        assert result.tag == expected.tag


def _chaos_backend(workers, faults, **kwargs):
    transport = FaultInjectingTransport(LocalProcessTransport(), faults)
    backend = ParallelBackend(
        StatevectorBackend,
        workers=workers,
        transport=transport,
        worker_timeout_s=kwargs.pop("worker_timeout_s", TIMEOUT_S),
        retry_backoff_s=kwargs.pop("retry_backoff_s", 0.0),
        **kwargs,
    )
    return backend, transport


def _pool_is_fully_live(backend):
    pool = backend._pool
    return (
        pool is not None
        and len(pool) == backend.workers
        and all(w.endpoint is not None and w.endpoint.alive() for w in pool)
    )


#: The fault matrix: every dispatch-loop fault point, as (name, fault
#: builder) with the builder mapping a worker count to the Fault.  "Nth send"
#: uses the second send occurrence on the last slot — with two batches run,
#: that is the slot's second dispatch, exercising a crash on a warmed-up
#: worker whose programs were already shipped.
FAULT_POINTS = [
    ("spawn", lambda w: Fault(worker=0, op="spawn", kind="crash")),
    ("first-send", lambda w: Fault(worker=0, op="send", kind="crash_before_send")),
    ("nth-send", lambda w: Fault(worker=w - 1, op="send", kind="crash_after_send", nth=2)),
    ("mid-recv", lambda w: Fault(worker=w // 2, op="recv", kind="crash")),
    ("last-recv", lambda w: Fault(worker=w - 1, op="recv", kind="crash")),
]


class TestChaosMatrix:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("point", [p[0] for p in FAULT_POINTS])
    def test_crash_at_every_fault_point_stays_bit_identical(self, workers, point):
        fault = dict(FAULT_POINTS)[point](workers)
        requests = _requests(batch=2 * workers + 3, seed=7)
        reference = StatevectorBackend().run_batch(requests)
        backend, transport = _chaos_backend(workers, [fault])
        try:
            with warnings.catch_warnings():
                # Every injected fault warns (respawn/reroute); none may
                # escalate to an error or break the results.
                warnings.simplefilter("ignore", RuntimeWarning)
                first = backend.run_batch(requests)
                second = backend.run_batch(requests)
            _assert_results_identical(first, reference)
            _assert_results_identical(second, reference)
            # The schedule actually executed.
            assert transport.injected, f"fault {fault} never fired"
            # Shard-level rerouting, not whole-batch fallback: the retry
            # budget (2) covers every single-crash schedule, so the
            # in-process last resort never fires.
            assert backend.fallback_batches == 0
            assert backend.fallback_shards == 0
            assert backend.shard_retries >= 1
            # Self-healing: the pool ends fully live, next dispatch clean.
            assert _pool_is_fully_live(backend)
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                third = backend.run_batch(requests)
            _assert_results_identical(third, reference)
        finally:
            backend.close()

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_hang_reaped_within_deadline(self, workers):
        requests = _requests(batch=workers + 2, seed=3)
        reference = StatevectorBackend().run_batch(requests)
        fault = Fault(worker=0, op="recv", kind="hang")
        backend, transport = _chaos_backend(workers, [fault], worker_timeout_s=0.5)
        try:
            started = time.monotonic()
            with pytest.warns(RuntimeWarning, match="rerouting"):
                results = backend.run_batch(requests)
            elapsed = time.monotonic() - started
            _assert_results_identical(results, reference)
            assert backend.deadline_timeouts == 1
            assert backend.shard_retries == 1
            assert backend.fallback_batches == 0
            # The hung worker was reaped within (roughly) one deadline: the
            # whole batch — including the respawn and rerouted shard — ends
            # well before a second deadline could have elapsed, instead of
            # deadlocking forever as the pre-transport blocking recv did.
            assert elapsed < 0.5 + TIMEOUT_S
            assert _pool_is_fully_live(backend)
        finally:
            backend.close()

    @pytest.mark.parametrize("workers", (2, 4))
    def test_garbled_reply_distrusts_endpoint_and_reroutes(self, workers):
        requests = _requests(batch=workers + 3, seed=5)
        reference = StatevectorBackend().run_batch(requests)
        fault = Fault(worker=workers - 1, op="recv", kind="garbled")
        backend, transport = _chaos_backend(workers, [fault])
        try:
            with pytest.warns(RuntimeWarning, match="garbled"):
                results = backend.run_batch(requests)
            _assert_results_identical(results, reference)
            # The endpoint's real reply was left stale in its pipe: the slot
            # must have been respawned, never read again.
            assert backend.worker_respawns == 1
            assert backend.fallback_batches == 0
            # The healed pool keeps producing clean, identical batches (a
            # stale reply leaking into a later dispatch would break here).
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                again = backend.run_batch(requests)
            _assert_results_identical(again, reference)
        finally:
            backend.close()

    def test_slow_reply_within_deadline_is_not_a_fault(self):
        requests = _requests(batch=6, seed=8)
        reference = StatevectorBackend().run_batch(requests)
        fault = Fault(worker=0, op="recv", kind="slow", delay_s=0.2)
        backend, transport = _chaos_backend(2, [fault], worker_timeout_s=TIMEOUT_S)
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                results = backend.run_batch(requests)
            _assert_results_identical(results, reference)
            assert transport.injected
            assert backend.shard_retries == 0
            assert backend.worker_respawns == 0
        finally:
            backend.close()


class TestRetryBudget:
    def test_fallback_only_after_budget_exhausted(self):
        requests = _requests(batch=7, seed=11)
        reference = StatevectorBackend().run_batch(requests)
        # Worker 0 crashes on *every* recv: attempts 1..3 all fail, the
        # budget (2 retries) exhausts, and only then does its shard run
        # in-process.  Worker 1's shard is untouched throughout.
        fault = Fault(worker=0, op="recv", kind="crash", nth=1, every=1)
        backend, transport = _chaos_backend(2, [fault], max_shard_retries=2)
        try:
            with pytest.warns(RuntimeWarning, match="retry budget exhausted"):
                results = backend.run_batch(requests)
            _assert_results_identical(results, reference)
            assert backend.shard_retries == 2
            assert backend.fallback_batches == 1
            assert backend.fallback_shards == 1
            # Three recv faults fired on slot 0 (initial attempt + 2
            # retries; the third failure stops respawning).
            assert len([f for f in transport.injected if f[1] == "recv"]) == 3
        finally:
            backend.close()

    def test_zero_budget_goes_straight_to_fallback(self):
        requests = _requests(batch=5, seed=13)
        reference = StatevectorBackend().run_batch(requests)
        fault = Fault(worker=0, op="recv", kind="crash")
        backend, transport = _chaos_backend(2, [fault], max_shard_retries=0)
        try:
            with pytest.warns(RuntimeWarning, match="retry budget exhausted"):
                results = backend.run_batch(requests)
            _assert_results_identical(results, reference)
            assert backend.shard_retries == 0
            assert backend.fallback_batches == 1
        finally:
            backend.close()

    def test_worker_side_errors_are_never_retried(self):
        operator = _operator(3, 4, seed=0)
        ansatz = HardwareEfficientAnsatz(3, num_layers=1)
        from repro.quantum import Statevector

        bad = ExecutionRequest(
            None,
            operator,
            initial_state=Statevector.zero_state(4),  # width mismatch
            program=compile_circuit_program(ansatz.circuit),
            parameters=np.zeros(ansatz.num_parameters),
        )
        backend, transport = _chaos_backend(2, [])
        try:
            with pytest.raises(ParallelExecutionError):
                backend.run_batch([bad] + _requests(batch=3, seed=2))
            # Deterministic request errors must not burn retries/respawns.
            assert backend.shard_retries == 0
            assert backend.worker_respawns == 0
            assert backend.fallback_batches == 0
        finally:
            backend.close()


class TestFaultSchedule:
    def test_fault_validation(self):
        with pytest.raises(ValueError, match="unknown fault op"):
            Fault(worker=0, op="frobnicate", kind="crash")
        with pytest.raises(ValueError, match="invalid for op"):
            Fault(worker=0, op="send", kind="hang")
        with pytest.raises(ValueError, match="nth"):
            Fault(worker=0, op="recv", kind="crash", nth=0)
        with pytest.raises(ValueError, match="every"):
            Fault(worker=0, op="recv", kind="crash", every=0)

    def test_fires_at_periodic_schedule(self):
        fault = Fault(worker=0, op="recv", kind="crash", nth=2, every=3)
        fired = [count for count in range(1, 12) if fault.fires_at(count)]
        assert fired == [2, 5, 8, 11]

    def test_hang_without_deadline_raises_instead_of_deadlocking(self):
        requests = _requests(batch=3, seed=4)
        reference = StatevectorBackend().run_batch(requests)
        fault = Fault(worker=0, op="recv", kind="hang")
        backend, transport = _chaos_backend(1, [fault], worker_timeout_s=None)
        try:
            # The injected hang surfaces as a loud TransportError (a test
            # hanging forever teaches nothing); the dispatcher treats it as
            # a wire failure and heals as usual.
            with pytest.warns(RuntimeWarning, match="deadlock|rerouting"):
                results = backend.run_batch(requests)
            _assert_results_identical(results, reference)
        finally:
            backend.close()


class TestZombieReaping:
    def test_close_escalates_to_sigkill_for_sigterm_ignoring_worker(self, monkeypatch):
        monkeypatch.setattr(LocalProcessEndpoint, "_GRACEFUL_JOIN_S", 0.2)
        monkeypatch.setattr(LocalProcessEndpoint, "_TERMINATE_JOIN_S", 0.2)
        endpoint = LocalProcessTransport().spawn(0, _sigterm_ignoring_stuck_worker)
        process = endpoint._process
        # Give the worker a moment to install its SIGTERM ignore.
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline and not process.is_alive():
            time.sleep(0.01)  # pragma: no cover - spawn is effectively instant
        time.sleep(0.3)
        assert process.is_alive()
        started = time.monotonic()
        endpoint.close()
        elapsed = time.monotonic() - started
        # terminate() was ignored; kill() must have reaped it regardless —
        # before the fix this left a zombie alive past close().
        assert not process.is_alive()
        assert process.exitcode is not None
        assert elapsed < 5.0

    def test_backend_close_reaps_sigterm_ignoring_pool(self, monkeypatch):
        monkeypatch.setattr(LocalProcessEndpoint, "_GRACEFUL_JOIN_S", 0.2)
        monkeypatch.setattr(LocalProcessEndpoint, "_TERMINATE_JOIN_S", 0.2)
        backend = ParallelBackend(_SigtermIgnoringBackend, workers=2)
        results = backend.run_batch(_requests(batch=4, seed=6))
        assert len(results) == 4
        processes = [w.endpoint._process for w in backend._pool]
        assert all(p.is_alive() for p in processes)
        backend.close()
        assert all(not p.is_alive() for p in processes)
        assert backend._pool is None


# -- module-level worker payloads (picklable under the fork start method) ----------


def _sigterm_ignoring_stuck_worker():
    """An inner factory that ignores SIGTERM and never returns: the worker
    neither serves the close message nor dies from terminate()."""
    import signal

    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    while True:
        time.sleep(0.05)


class _SigtermIgnoringBackend(StatevectorBackend):
    """A functional statevector backend whose worker process shrugs off
    SIGTERM — close() must escalate to SIGKILL to reap it."""

    def __init__(self) -> None:
        super().__init__()
        import signal

        try:
            signal.signal(signal.SIGTERM, signal.SIG_IGN)
        except ValueError:  # pragma: no cover - parent-side template build
            pass  # not in the main thread (the parent's template instance)


# -- property-based sweep ----------------------------------------------------------


@st.composite
def _faults(draw):
    op = draw(st.sampled_from(["spawn", "send", "recv"]))
    kind = draw(st.sampled_from(list(Fault._KINDS[op])))
    if kind == "slow":
        delay = draw(st.floats(0.0, 0.05))
    else:
        delay = 0.0
    return Fault(
        worker=draw(st.integers(0, 3)),
        op=op,
        kind=kind,
        nth=draw(st.integers(1, 3)),
        every=draw(st.one_of(st.none(), st.integers(1, 2))),
        delay_s=delay,
    )


class TestFaultScheduleProperties:
    @given(
        workers=st.sampled_from(WORKER_COUNTS),
        faults=st.lists(_faults(), max_size=4),
        seed=st.integers(0, 2**16),
        mixed=st.booleans(),
        batch=st.integers(1, 10),
    )
    @settings(max_examples=12, deadline=None)
    def test_random_schedules_stay_bit_identical_and_bounded(
        self, workers, faults, seed, mixed, batch
    ):
        requests = _mixed_requests(seed=seed) if mixed else _requests(batch=batch, seed=seed)
        reference = StatevectorBackend().run_batch(requests)
        backend, transport = _chaos_backend(workers, faults, worker_timeout_s=0.5)
        try:
            started = time.monotonic()
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                results = backend.run_batch(requests)
                again = backend.run_batch(requests)
            elapsed = time.monotonic() - started
            _assert_results_identical(results, reference)
            _assert_results_identical(again, reference)
            # Every reply wait is bounded by the 0.5 s deadline, and the
            # retry budget bounds attempts — so even a schedule of repeating
            # hang faults cannot stall the dispatch beyond (attempts x
            # deadline) per batch, far under this envelope.  A regression
            # back to unbounded blocking recv fails here (and the chaos
            # marker's CI timeout backstops an outright deadlock).
            assert elapsed < 60.0
        finally:
            backend.close()
