"""Tests for exact ground-state solvers and the expectation estimators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hamiltonians.spin import transverse_field_ising_chain
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.exact import ground_state, ground_state_energy, pauli_to_sparse
from repro.quantum.pauli import PauliOperator
from repro.quantum.sampling import (
    ExactEstimator,
    SamplingEstimator,
    ShotNoiseEstimator,
)


class TestGroundState:
    def test_single_qubit_z(self):
        operator = PauliOperator.from_terms([("Z", 1.0)])
        result = ground_state(operator, compute_gap=True)
        assert result.energy == pytest.approx(-1.0)
        assert result.gap == pytest.approx(2.0)
        assert abs(result.statevector.data[1]) == pytest.approx(1.0)

    def test_bell_hamiltonian(self):
        operator = PauliOperator.from_terms([("XX", -1.0), ("ZZ", -1.0)])
        result = ground_state(operator)
        assert result.energy == pytest.approx(-2.0)

    def test_matches_dense_eigenvalue(self, rng):
        operator = transverse_field_ising_chain(4, 0.7)
        dense = np.linalg.eigvalsh(operator.to_matrix())[0]
        assert ground_state_energy(operator) == pytest.approx(dense)

    def test_sparse_path_matches_dense(self):
        # 11 qubits forces the sparse Lanczos branch; compare on 6 qubits by
        # monkey-patching the threshold instead would be invasive, so compare
        # sparse matrix construction directly.
        operator = transverse_field_ising_chain(6, 1.1)
        sparse = pauli_to_sparse(operator).toarray()
        np.testing.assert_allclose(sparse, operator.to_matrix(), atol=1e-12)

    def test_large_sparse_ground_state(self):
        operator = transverse_field_ising_chain(11, 1.0)
        result = ground_state(operator)
        # TFIM at criticality: ground energy per site approaches -4/pi ≈ -1.27;
        # open 11-site chain should be in a sane range.
        assert -2.0 * 11 < result.energy < -1.0 * 11

    def test_non_hermitian_rejected(self):
        operator = PauliOperator.from_terms([("X", 1.0j)])
        with pytest.raises(ValueError):
            ground_state(operator)

    def test_empty_operator(self):
        result = ground_state(PauliOperator.zero(2), compute_gap=True)
        assert result.energy == 0.0

    def test_gap_positive_for_gapped_model(self):
        operator = transverse_field_ising_chain(4, 0.2)
        result = ground_state(operator, compute_gap=True)
        assert result.gap is not None and result.gap >= 0


class TestEstimators:
    @pytest.fixture
    def circuit(self):
        return QuantumCircuit(3).ry(0.4, 0).cx(0, 1).ry(0.8, 1).cx(1, 2).rz(0.3, 2)

    @pytest.fixture
    def operator(self):
        return PauliOperator.from_terms([("ZZI", 0.7), ("IXX", -0.4), ("ZIZ", 1.1), ("III", 0.5)])

    def test_exact_estimator_matches_statevector(self, circuit, operator):
        estimator = ExactEstimator(shots_per_term=100)
        result = estimator.estimate(circuit, operator)
        from repro.quantum.statevector import StatevectorSimulator

        expected = StatevectorSimulator().run(circuit).expectation(operator)
        assert result.value == pytest.approx(expected)
        # 3 non-identity terms × 100 shots
        assert result.shots_used == 300
        assert estimator.total_shots == 300
        assert estimator.total_evaluations == 1

    def test_exact_estimator_term_values(self, circuit, operator):
        result = ExactEstimator().estimate(circuit, operator)
        assert len(result.term_values) == 4
        recombined = sum(
            coeff.real * result.term_values[pauli] for pauli, coeff in operator.items()
        )
        assert recombined == pytest.approx(result.value)

    def test_shot_noise_estimator_converges_with_shots(self, circuit, operator):
        exact = ExactEstimator().estimate(circuit, operator).value
        noisy_small = ShotNoiseEstimator(shots_per_term=16, seed=0)
        noisy_large = ShotNoiseEstimator(shots_per_term=65536, seed=0)
        small_errors = [
            abs(noisy_small.estimate(circuit, operator).value - exact) for _ in range(20)
        ]
        large_errors = [
            abs(noisy_large.estimate(circuit, operator).value - exact) for _ in range(20)
        ]
        assert np.mean(large_errors) < np.mean(small_errors)

    def test_shot_noise_variance_reported(self, circuit, operator):
        result = ShotNoiseEstimator(shots_per_term=128, seed=1).estimate(circuit, operator)
        assert result.variance > 0

    def test_sampling_estimator_close_to_exact(self, circuit, operator):
        exact = ExactEstimator().estimate(circuit, operator).value
        sampled = SamplingEstimator(shots_per_term=20000, seed=3).estimate(circuit, operator)
        assert sampled.value == pytest.approx(exact, abs=0.1)

    def test_invalid_shots_per_term(self):
        with pytest.raises(ValueError):
            ExactEstimator(shots_per_term=0)

    def test_estimate_state_interface(self, operator):
        from repro.quantum.statevector import Statevector

        estimator = ExactEstimator()
        value = estimator.estimate_state(Statevector.zero_state(3), operator).value
        # On |000>: ZZI=1, ZIZ=1, IXX=0, III=1 → 0.7 + 1.1 + 0.5
        assert value == pytest.approx(2.3)
