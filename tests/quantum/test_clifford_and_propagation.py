"""Tests for the stabilizer simulator and the Pauli-propagation simulator."""

from __future__ import annotations

import itertools
import random

import numpy as np
import pytest

from repro.quantum.circuit import QuantumCircuit
from repro.quantum.clifford import CliffordSimulator, clifford_angle_index, is_clifford_angle
from repro.quantum.pauli import PauliOperator
from repro.quantum.pauli_propagation import PauliPropagationConfig, PauliPropagationSimulator
from repro.quantum.statevector import StatevectorSimulator


class TestCliffordAngles:
    def test_is_clifford_angle(self):
        assert is_clifford_angle(0.0)
        assert is_clifford_angle(np.pi / 2)
        assert is_clifford_angle(-np.pi)
        assert not is_clifford_angle(0.3)

    def test_angle_index(self):
        assert clifford_angle_index(0.0) == 0
        assert clifford_angle_index(np.pi / 2) == 1
        assert clifford_angle_index(2 * np.pi) == 0
        assert clifford_angle_index(-np.pi / 2) == 3
        with pytest.raises(ValueError):
            clifford_angle_index(0.4)


class TestCliffordSimulator:
    def test_initial_state_expectations(self):
        simulator = CliffordSimulator(2)
        assert simulator.pauli_expectation("ZI") == 1.0
        assert simulator.pauli_expectation("XI") == 0.0
        assert simulator.pauli_expectation("II") == 1.0

    def test_x_gate_flips_z(self):
        simulator = CliffordSimulator(1)
        simulator.apply_circuit(QuantumCircuit(1).x(0))
        assert simulator.pauli_expectation("Z") == -1.0

    def test_bell_state_stabilizers(self):
        simulator = CliffordSimulator(2)
        simulator.apply_circuit(QuantumCircuit(2).h(0).cx(0, 1))
        assert simulator.pauli_expectation("XX") == 1.0
        assert simulator.pauli_expectation("ZZ") == 1.0
        assert simulator.pauli_expectation("YY") == -1.0
        assert simulator.pauli_expectation("ZI") == 0.0

    def test_hamiltonian_expectation(self):
        simulator = CliffordSimulator(2)
        simulator.apply_circuit(QuantumCircuit(2).h(0).cx(0, 1))
        operator = PauliOperator.from_terms([("XX", 0.5), ("ZZ", 0.25), ("ZI", 3.0)])
        assert simulator.expectation(operator) == pytest.approx(0.75)

    def test_non_clifford_angle_rejected(self):
        simulator = CliffordSimulator(1)
        with pytest.raises(ValueError):
            simulator.apply_circuit(QuantumCircuit(1).ry(0.3, 0))

    def test_random_clifford_circuits_match_statevector(self):
        rng = random.Random(7)
        for _ in range(15):
            num_qubits = rng.choice([2, 3])
            circuit = QuantumCircuit(num_qubits)
            for _ in range(12):
                gate = rng.choice(["h", "s", "sdg", "x", "y", "z", "cx", "cz", "rx", "ry", "rz"])
                if gate in ("cx", "cz"):
                    a, b = rng.sample(range(num_qubits), 2)
                    circuit.append(gate, [a, b])
                elif gate in ("rx", "ry", "rz"):
                    angle = rng.choice([0.0, np.pi / 2, np.pi, 3 * np.pi / 2])
                    circuit.append(gate, [rng.randrange(num_qubits)], [angle])
                else:
                    circuit.append(gate, [rng.randrange(num_qubits)])
            clifford = CliffordSimulator(num_qubits).apply_circuit(circuit)
            statevector = StatevectorSimulator().run(circuit)
            for labels in itertools.product("IXYZ", repeat=num_qubits):
                label = "".join(labels)
                assert clifford.pauli_expectation(label) == pytest.approx(
                    statevector.pauli_expectation(label), abs=1e-9
                ), f"{label} mismatch"


class TestPauliPropagation:
    @pytest.fixture
    def circuit(self):
        circuit = QuantumCircuit(4)
        circuit.ry(0.3, 0).ry(0.8, 1).cx(0, 1).rz(0.5, 2).cx(1, 2).rx(0.7, 3).cx(2, 3)
        circuit.ry(0.2, 0).rz(0.4, 2)
        return circuit

    @pytest.fixture
    def operator(self):
        return PauliOperator.from_terms(
            [("ZZII", 0.8), ("IXXI", -0.5), ("IIZZ", 1.2), ("XIIX", 0.3), ("IIII", 0.25)]
        )

    def test_untruncated_matches_statevector(self, circuit, operator):
        simulator = PauliPropagationSimulator(
            PauliPropagationConfig(max_weight=4, coefficient_threshold=0.0)
        )
        value = simulator.expectation(operator, circuit)
        expected = StatevectorSimulator().run(circuit).expectation(operator)
        assert value == pytest.approx(expected, abs=1e-9)

    def test_initial_bits_flip_z_contributions(self, operator):
        simulator = PauliPropagationSimulator()
        identity_circuit = QuantumCircuit(4).rz(0.0, 0)
        all_zero = simulator.expectation(operator, identity_circuit, "0000")
        flipped = simulator.expectation(operator, identity_circuit, "1000")
        # Flipping qubit 0 negates the ZZII contribution only.
        assert all_zero - flipped == pytest.approx(2 * 0.8)

    def test_truncation_reduces_terms(self, circuit, operator):
        loose = PauliPropagationSimulator(PauliPropagationConfig(max_weight=4))
        tight = PauliPropagationSimulator(
            PauliPropagationConfig(max_weight=1, coefficient_threshold=1e-3)
        )
        loose_terms = loose.propagate(operator, circuit)
        tight_terms = tight.propagate(operator, circuit)
        assert len(tight_terms) < len(loose_terms)
        assert tight.truncated_weight_terms > 0

    def test_truncated_value_close_to_exact(self, circuit, operator):
        exact = StatevectorSimulator().run(circuit).expectation(operator)
        truncated = PauliPropagationSimulator(
            PauliPropagationConfig(max_weight=2, coefficient_threshold=1e-6)
        ).expectation(operator, circuit)
        assert truncated == pytest.approx(exact, abs=0.5)

    def test_unbound_circuit_rejected(self, operator):
        from repro.quantum.circuit import Parameter

        circuit = QuantumCircuit(4).ry(Parameter("t"), 0)
        with pytest.raises(ValueError):
            PauliPropagationSimulator().expectation(operator, circuit)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            PauliPropagationConfig(max_weight=0)
        with pytest.raises(ValueError):
            PauliPropagationConfig(coefficient_threshold=-1)
        with pytest.raises(ValueError):
            PauliPropagationConfig(max_terms=0)

    def test_large_system_runs(self):
        from repro.hamiltonians.spin import transverse_field_ising_chain
        from repro.ansatz import HardwareEfficientAnsatz

        operator = transverse_field_ising_chain(20, 1.0)
        ansatz = HardwareEfficientAnsatz(20, num_layers=1, entanglement="linear")
        parameters = np.linspace(-0.2, 0.2, ansatz.num_parameters)
        simulator = PauliPropagationSimulator(
            PauliPropagationConfig(max_weight=4, coefficient_threshold=1e-5, max_terms=20000)
        )
        value = simulator.expectation(operator, ansatz.bound_circuit(parameters))
        # Energy must lie within the operator's trivial bounds.
        assert abs(value) <= operator.l1_norm() + 1e-9
