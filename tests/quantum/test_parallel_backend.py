"""Backend-level tests for multi-process execution sharding.

The acceptance contract of :class:`~repro.quantum.parallel.ParallelBackend`:
merged results are **bit-identical** to the wrapped backend's own in-process
``run_batch`` for every worker count (``workers=1`` is the exact degenerate
case), for every inner backend (statevector, Clifford-routed,
density-matrix), and for any mix of program and bound-circuit requests —
plus the lifecycle and failure semantics (lazy spawn, close/respawn,
worker-side errors re-raised, dead workers respawned with their shards
rerouted).  The exhaustive fault matrix lives in
``tests/quantum/test_transport_faults.py``.
"""

from __future__ import annotations

import math
import time
import warnings
from functools import partial

import numpy as np
import pytest

from repro.ansatz import HardwareEfficientAnsatz
from repro.quantum import (
    CliffordBackend,
    ExecutionRequest,
    NoiseModel,
    ParallelBackend,
    ParallelExecutionError,
    PauliOperator,
    Statevector,
    StatevectorBackend,
    compile_circuit_program,
    make_execution_backend,
)

WORKER_COUNTS = (1, 2, 4)


def _operator(num_qubits: int, num_terms: int, seed: int) -> PauliOperator:
    rng = np.random.default_rng(seed)
    labels = set()
    while len(labels) < num_terms:
        labels.add("".join(rng.choice(list("IXYZ"), size=num_qubits)))
    return PauliOperator(num_qubits, dict(zip(sorted(labels), rng.normal(size=num_terms))))


def _program_requests(num_qubits=3, batch=6, seed=0, layers=2, clifford=False):
    rng = np.random.default_rng(seed)
    ansatz = HardwareEfficientAnsatz(num_qubits, num_layers=layers)
    program = compile_circuit_program(ansatz.circuit)
    operator = _operator(num_qubits, 6, seed)
    requests = []
    for index in range(batch):
        if clifford:
            point = (math.pi / 2) * rng.integers(0, 4, size=ansatz.num_parameters)
        else:
            point = rng.normal(0.0, 0.7, size=ansatz.num_parameters)
        requests.append(
            ExecutionRequest(
                None,
                operator,
                initial_bitstring="0" * num_qubits,
                tag=("req", index),
                program=program,
                parameters=point,
            )
        )
    return requests


def _mixed_structure_requests(seed=1):
    """Two program structures plus bound-circuit requests in one batch."""
    rng = np.random.default_rng(seed)
    shallow = HardwareEfficientAnsatz(3, num_layers=1)
    deep = HardwareEfficientAnsatz(3, num_layers=3)
    operator = _operator(3, 5, seed)
    requests = []
    for index, ansatz in enumerate((shallow, deep, shallow, deep, shallow)):
        point = rng.normal(size=ansatz.num_parameters)
        if index % 2:
            requests.append(
                ExecutionRequest(ansatz.bound_circuit(point), operator, tag=index)
            )
        else:
            requests.append(
                ExecutionRequest(
                    None,
                    operator,
                    tag=index,
                    program=compile_circuit_program(ansatz.circuit),
                    parameters=point,
                )
            )
    return requests


def _assert_results_identical(parallel_results, sequential_results, *, states=False):
    assert len(parallel_results) == len(sequential_results)
    for ours, reference in zip(parallel_results, sequential_results):
        np.testing.assert_array_equal(ours.term_vector, reference.term_vector)
        assert ours.term_basis == reference.term_basis
        assert ours.backend_name == reference.backend_name
        assert ours.tag == reference.tag
        if states:
            np.testing.assert_array_equal(ours.state.data, reference.state.data)


class TestParallelStatevector:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_bit_identical_to_in_process(self, workers):
        requests = _program_requests(batch=7, seed=workers)
        reference = StatevectorBackend().run_batch(requests)
        with ParallelBackend(StatevectorBackend, workers=workers) as backend:
            results = backend.run_batch(requests)
        _assert_results_identical(results, reference)

    def test_mixed_structures_and_bound_circuits(self):
        requests = _mixed_structure_requests()
        reference = StatevectorBackend().run_batch(requests)
        with ParallelBackend(StatevectorBackend, workers=2) as backend:
            results = backend.run_batch(requests)
        _assert_results_identical(results, reference)

    def test_states_cross_the_process_boundary(self):
        requests = _program_requests(batch=4)
        reference = StatevectorBackend().run_batch(requests, need_states=True)
        with ParallelBackend(StatevectorBackend, workers=2) as backend:
            results = backend.run_batch(requests, need_states=True)
        _assert_results_identical(results, reference, states=True)

    def test_initial_states_and_bitstrings_preserved(self):
        operator = PauliOperator.from_terms([("ZZZ", 1.0), ("IIZ", 0.5)])
        ansatz = HardwareEfficientAnsatz(3, num_layers=1)
        program = compile_circuit_program(ansatz.circuit)
        point = np.linspace(-0.4, 0.4, ansatz.num_parameters)
        minus = Statevector.zero_state(3).data.copy()
        minus[0], minus[1] = 0.0, 1.0  # |001>
        requests = [
            ExecutionRequest(None, operator, program=program, parameters=point),
            ExecutionRequest(
                None, operator, initial_bitstring="010", program=program, parameters=point
            ),
            ExecutionRequest(
                None,
                operator,
                initial_state=Statevector(minus),
                program=program,
                parameters=point,
            ),
        ]
        reference = StatevectorBackend().run_batch(requests)
        with ParallelBackend(StatevectorBackend, workers=3) as backend:
            results = backend.run_batch(requests)
        _assert_results_identical(results, reference)

    def test_repeated_dispatches_reuse_shipped_programs(self):
        requests = _program_requests(batch=6)
        with ParallelBackend(StatevectorBackend, workers=2) as backend:
            backend.run_batch(requests)
            first_shipped = backend.programs_shipped
            backend.run_batch(requests)
            assert backend.programs_shipped == first_shipped  # nothing re-pickled
            assert backend.program_reuses > 0
            stats = backend.worker_cache_stats()
        assert stats["workers"] == 2
        assert stats["programs_shipped"] == first_shipped <= 2
        assert stats["fallback_batches"] == 0

    def test_empty_batch(self):
        with ParallelBackend(StatevectorBackend, workers=2) as backend:
            assert backend.run_batch([]) == []


class TestParallelClifford:
    def test_bit_identical_clifford_routing(self):
        requests = _program_requests(batch=6, clifford=True)
        reference = CliffordBackend().run_batch(requests)
        with ParallelBackend(CliffordBackend, workers=2) as backend:
            results = backend.run_batch(requests)
        _assert_results_identical(results, reference)
        assert all(result.backend_name == "clifford" for result in results)


class TestParallelDensityMatrix:
    def test_bit_identical_noisy_execution(self):
        noise = NoiseModel(single_qubit_error=2e-3, two_qubit_error=8e-3, readout_error=1e-2)
        requests = _program_requests(batch=5, seed=5)
        factory = partial(make_execution_backend, "density_matrix", noise_model=noise)
        reference = factory().run_batch(requests)
        with ParallelBackend(factory, workers=2) as backend:
            assert backend.name == "density_matrix"
            assert backend.provides_states is False
            assert backend.noise_model == noise
            results = backend.run_batch(requests)
        _assert_results_identical(results, reference)

    def test_scheduler_metadata_proxies_for_unitary_inner(self):
        with ParallelBackend(StatevectorBackend, workers=1) as backend:
            assert backend.name == "statevector"
            assert backend.provides_states is True
            assert backend.noise_model is None
            assert isinstance(backend.inner, StatevectorBackend)


class TestLifecycleAndFailure:
    def test_workers_validated(self):
        with pytest.raises(ValueError, match="workers"):
            ParallelBackend(StatevectorBackend, workers=0)

    def test_pool_spawns_lazily_and_close_is_idempotent(self):
        backend = ParallelBackend(StatevectorBackend, workers=2)
        assert backend._pool is None  # nothing spawned yet
        backend.close()
        backend.close()
        backend.run_batch(_program_requests(batch=2))
        assert backend._pool is not None
        backend.close()
        assert backend._pool is None
        # A closed backend respawns on the next dispatch.
        results = backend.run_batch(_program_requests(batch=2))
        assert len(results) == 2
        backend.close()

    def test_worker_side_error_reraised_with_traceback(self):
        operator = _operator(3, 4, seed=0)
        bad = ExecutionRequest(
            None,
            operator,
            # Initial state width disagrees with the program: the worker's
            # inner backend raises, and the parent re-raises it.
            initial_state=Statevector.zero_state(4),
            program=compile_circuit_program(
                HardwareEfficientAnsatz(3, num_layers=1).circuit
            ),
            parameters=np.zeros(HardwareEfficientAnsatz(3, num_layers=1).num_parameters),
        )
        good = _program_requests(batch=2)
        reference = StatevectorBackend().run_batch(good)
        with ParallelBackend(StatevectorBackend, workers=2) as backend:
            with pytest.raises(ParallelExecutionError, match="initial state has 4 qubits"):
                # The bad request shards to one worker while the other holds
                # good work: its pending reply must be drained, not left to
                # desynchronise (and tear down) the pool on the next batch.
                backend.run_batch([bad] + good)
            # The pool survives request-level errors and stays parallel.
            assert backend._pool is not None
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                results = backend.run_batch(good)
            _assert_results_identical(results, reference)
            assert backend.fallback_batches == 0

    def test_dead_worker_respawns_and_stays_parallel(self):
        requests = _program_requests(batch=6, seed=9)
        reference = StatevectorBackend().run_batch(requests)
        backend = ParallelBackend(StatevectorBackend, workers=2)
        try:
            backend.run_batch(requests)
            backend._pool[0].endpoint._process.kill()
            deadline = time.monotonic() + 5.0
            while backend._pool[0].endpoint._process.is_alive() and time.monotonic() < deadline:
                time.sleep(0.01)
            # The health check catches the corpse before dispatch: the slot
            # respawns (with a warning — worker churn must not be silent) and
            # the batch stays fully parallel, no in-process fallback.
            with pytest.warns(RuntimeWarning, match="respawning"):
                results = backend.run_batch(requests)
            _assert_results_identical(results, reference)
            assert backend.fallback_batches == 0
            assert backend.worker_respawns == 1
            assert backend._pool[0].respawns == 1
            # Subsequent batches run clean on the healed pool.
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                again = backend.run_batch(requests)
            _assert_results_identical(again, reference)
            assert backend.fallback_batches == 0
            assert backend.worker_respawns == 1
            assert all(w.endpoint.alive() for w in backend._pool)
        finally:
            backend.close()

    def test_unpicklable_payload_falls_back_for_its_shard_only(self):
        good = _program_requests(batch=7, seed=11)
        ansatz = HardwareEfficientAnsatz(3, num_layers=1)
        circuit = ansatz.bound_circuit(np.zeros(ansatz.num_parameters))
        # A payload that cannot cross the process boundary: the pickle error
        # raises from the endpoint send mid-dispatch, after another worker
        # already received its shard.
        circuit.not_picklable = lambda: None
        bad = ExecutionRequest(circuit, _operator(3, 5, 11), tag="bad")
        requests = good + [bad]
        reference = StatevectorBackend().run_batch(requests)
        backend = ParallelBackend(StatevectorBackend, workers=2)
        try:
            with pytest.warns(RuntimeWarning, match="shard dispatch failed"):
                results = backend.run_batch(requests)
            _assert_results_identical(results, reference)
            # Only the unpicklable request's shard ran in-process; the other
            # worker's replies were kept and the pool survives untouched —
            # no respawn (the workers never saw the bad payload) and the very
            # next batch runs clean and parallel without any close().
            assert backend.fallback_batches == 1
            assert backend.fallback_shards == 1
            assert backend.worker_respawns == 0
            good_reference = StatevectorBackend().run_batch(good)
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                recovered = backend.run_batch(good)
            _assert_results_identical(recovered, good_reference)
            assert backend.fallback_batches == 1
            assert all(w.endpoint.alive() for w in backend._pool)
        finally:
            backend.close()
