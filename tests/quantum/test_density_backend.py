"""Parity tests for batched noisy execution through the density-matrix backend.

Mirrors ``tests/quantum/test_backend.py``'s pure-state parity structure for
the noisy path.  The contract under test: stacked ``U ρ U†`` execution of
whole request batches is **bit-identical** to the sequential per-request
:class:`~repro.quantum.density_matrix.DensityMatrixSimulator` (and therefore
independent of batch composition), across bound-circuit and program requests,
mixed circuit structures, and every wiring level (backend, round scheduler,
controller).  A noiseless model degenerates to the statevector path.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.ansatz import HardwareEfficientAnsatz
from repro.core import RoundScheduler, TreeVQAConfig, TreeVQAController, VQACluster, VQATask
from repro.hamiltonians import transverse_field_ising_chain
from repro.quantum import (
    DensityMatrixBackend,
    DensityMatrixEstimator,
    ExecutionRequest,
    PauliOperator,
    QuantumCircuit,
    Statevector,
    StatevectorBackend,
    compile_circuit_program,
    make_execution_backend,
)
from repro.quantum.density_matrix import DensityMatrix, DensityMatrixSimulator
from repro.quantum.engine import compiled_pauli_operator
from repro.quantum.noise import NoiseModel, get_backend_profile

#: A realistic gate-attached noise model (depolarising + decoherence + readout).
NOISY = get_backend_profile("mumbai").to_noise_model()


def _random_operator(num_qubits: int, num_terms: int, seed: int) -> PauliOperator:
    rng = np.random.default_rng(seed)
    labels = set()
    while len(labels) < num_terms:
        labels.add("".join(rng.choice(list("IXYZ"), size=num_qubits)))
    return PauliOperator(num_qubits, dict(zip(sorted(labels), rng.normal(size=num_terms))))


def _sequential_term_vector(circuit, operator, noise_model, initial_state=None):
    """The per-request reference: sequential simulator + engine + readout fold."""
    if initial_state is None:
        rho0 = DensityMatrix.zero_state(circuit.num_qubits)
    else:
        rho0 = DensityMatrix.from_statevector(initial_state)
    state = DensityMatrixSimulator(noise_model).run(circuit, rho0)
    engine = compiled_pauli_operator(operator)
    vector = engine.expectation_values_density(state.data)
    vector[engine.identity_mask] = 1.0
    readout = noise_model.readout_error
    if readout > 0:
        vector = vector * (1.0 - 2.0 * readout) ** engine.weights
    return vector


def _requests(num_qubits=3, batch=5, seed=0, num_layers=2, **kwargs):
    rng = np.random.default_rng(seed)
    ansatz = HardwareEfficientAnsatz(num_qubits, num_layers=num_layers)
    operator = _random_operator(num_qubits, 6, seed)
    return [
        ExecutionRequest(
            circuit=ansatz.bound_circuit(rng.normal(0.0, 0.7, ansatz.num_parameters)),
            operator=operator,
            **kwargs,
        )
        for _ in range(batch)
    ]


class TestDensityMatrixBackendParity:
    def test_batched_matches_sequential_simulator_bitwise(self):
        requests = _requests(batch=6, seed=1)
        results = DensityMatrixBackend(NOISY).run_batch(requests)
        for request, result in zip(requests, results):
            expected = _sequential_term_vector(request.circuit, request.operator, NOISY)
            np.testing.assert_array_equal(result.term_vector, expected)
            assert result.backend_name == "density_matrix"
            assert result.term_basis == tuple(request.operator.paulis())
            assert result.state is None

    def test_batching_is_grouping_invariant(self):
        # The acceptance contract: batch composition never shows up in the
        # numbers — together, alone, and pairwise-chunked runs are bitwise equal.
        backend = DensityMatrixBackend(NOISY)
        requests = _requests(batch=6, seed=2)
        together = backend.run_batch(requests)
        alone = [backend.run_batch([request])[0] for request in requests]
        pairs = [
            result
            for start in range(0, len(requests), 2)
            for result in backend.run_batch(requests[start : start + 2])
        ]
        for batched, single, paired in zip(together, alone, pairs):
            np.testing.assert_array_equal(batched.term_vector, single.term_vector)
            np.testing.assert_array_equal(batched.term_vector, paired.term_vector)

    def test_program_requests_bit_identical_to_bound_circuit_requests(self):
        ansatz = HardwareEfficientAnsatz(3, num_layers=2)
        operator = _random_operator(3, 6, seed=3)
        rng = np.random.default_rng(3)
        points = [rng.normal(0.0, 0.7, ansatz.num_parameters) for _ in range(4)]
        program = compile_circuit_program(ansatz.circuit)
        backend = DensityMatrixBackend(NOISY)
        via_programs = backend.run_batch(
            [
                ExecutionRequest(None, operator, program=program, parameters=point)
                for point in points
            ]
        )
        via_circuits = backend.run_batch(
            [ExecutionRequest(ansatz.bound_circuit(p), operator) for p in points]
        )
        assert backend.program_requests == len(points)
        for point, left, right in zip(points, via_programs, via_circuits):
            np.testing.assert_array_equal(left.term_vector, right.term_vector)
            sequential = _sequential_term_vector(ansatz.bound_circuit(point), operator, NOISY)
            np.testing.assert_array_equal(left.term_vector, sequential)

    def test_mixed_structures_and_request_kinds_in_one_batch(self):
        shallow = HardwareEfficientAnsatz(3, num_layers=1)
        deep = HardwareEfficientAnsatz(3, num_layers=3)
        operator = _random_operator(3, 5, seed=4)
        rng = np.random.default_rng(4)
        requests = []
        for ansatz in (shallow, deep):
            program = compile_circuit_program(ansatz.circuit)
            requests.append(
                ExecutionRequest(
                    None,
                    operator,
                    program=program,
                    parameters=rng.normal(size=ansatz.num_parameters),
                )
            )
            requests.append(
                ExecutionRequest(
                    ansatz.bound_circuit(rng.normal(size=ansatz.num_parameters)), operator
                )
            )
        results = DensityMatrixBackend(NOISY).run_batch(requests)
        for request, result in zip(requests, results):
            expected = _sequential_term_vector(request.resolve_circuit(), operator, NOISY)
            np.testing.assert_array_equal(result.term_vector, expected)

    def test_initial_state_and_bitstring_handling(self):
        circuit = QuantumCircuit(3).h(0).cx(0, 1)
        operator = PauliOperator.from_terms([("ZZI", 1.0), ("IIZ", 1.0)])
        backend = DensityMatrixBackend(NoiseModel())
        via_bitstring = backend.run_batch(
            [ExecutionRequest(circuit, operator, initial_bitstring="001")]
        )[0]
        # Qubit 2 starts in |1>: <IIZ> = -1; the Bell pair on 0,1 gives <ZZI> = 1.
        np.testing.assert_allclose(via_bitstring.term_vector, [1.0, -1.0], atol=1e-12)
        dense = Statevector.computational_basis(3, "001")
        via_state = backend.run_batch(
            [ExecutionRequest(circuit, operator, initial_state=dense)]
        )[0]
        np.testing.assert_array_equal(via_state.term_vector, via_bitstring.term_vector)

    def test_noiseless_model_degenerates_to_statevector_path(self):
        requests = _requests(batch=4, seed=5)
        noiseless = DensityMatrixBackend(NoiseModel())
        assert noiseless.noise_model.is_noiseless
        dense = StatevectorBackend()
        for noisy_free, pure in zip(
            noiseless.run_batch(requests), dense.run_batch(requests)
        ):
            np.testing.assert_allclose(
                noisy_free.term_vector, pure.term_vector, rtol=0, atol=1e-12
            )


def _make_clusters(estimator, *, num_tasks=5, num_qubits=3, seed=0):
    config = TreeVQAConfig(
        max_rounds=3, warmup_iterations=0, window_size=2,
        disable_automatic_splits=True, seed=seed,
    )
    ansatz = HardwareEfficientAnsatz(num_qubits, num_layers=2)
    return [
        VQACluster(
            cluster_id=f"c{index}",
            tasks=[
                VQATask(
                    name=f"t{index}",
                    hamiltonian=transverse_field_ising_chain(num_qubits, 0.7 + 0.1 * index),
                    scan_parameter=float(index),
                )
            ],
            ansatz=ansatz,
            optimizer=config.make_optimizer(),
            estimator=estimator,
            config=config,
            initial_parameters=ansatz.zero_parameters(),
        )
        for index in range(num_tasks)
    ]


def _run_rounds(scheduler, clusters, rounds=2):
    records = []
    for _ in range(rounds):
        records.extend(record for _, record in scheduler.run_round(clusters))
    return records


class TestSchedulerNoisyParity:
    def test_batched_rounds_match_per_request_and_batch_size_one(self):
        # Three wirings of the same noisy workload: full batches through the
        # density-matrix backend, the max_batch_size=1 degenerate case, and
        # the legacy per-request fallback (statevector backend mismatch).
        runs = {}
        for mode, (backend, batch_size) in {
            "batched": (DensityMatrixBackend(NOISY), None),
            "one": (DensityMatrixBackend(NOISY), 1),
            "per_request": (StatevectorBackend(), None),
        }.items():
            estimator = DensityMatrixEstimator(NOISY, seed=7)
            scheduler = RoundScheduler(backend, estimator, max_batch_size=batch_size)
            runs[mode] = (
                _run_rounds(scheduler, _make_clusters(estimator, seed=1)),
                scheduler,
            )
        batched_records, batched_scheduler = runs["batched"]
        assert batched_scheduler.batches_executed > 0
        assert runs["per_request"][1].batches_executed == 0  # fell back
        for mode in ("one", "per_request"):
            records, _ = runs[mode]
            assert len(records) == len(batched_records)
            for left, right in zip(batched_records, records):
                assert left.mixed_loss == right.mixed_loss
                assert left.individual_losses == right.individual_losses
                np.testing.assert_array_equal(left.parameters, right.parameters)

    def test_shot_noise_draws_identical_across_paths(self):
        # With add_shot_noise the estimator consumes RNG per conversion; the
        # scheduler converts in cluster order on every path, so seeded runs
        # stay bit-identical batched vs per-request.
        def run(backend):
            estimator = DensityMatrixEstimator(NOISY, seed=11, add_shot_noise=True)
            scheduler = RoundScheduler(backend, estimator)
            return _run_rounds(scheduler, _make_clusters(estimator, num_tasks=3, seed=2))

        batched = run(DensityMatrixBackend(NOISY))
        per_request = run(StatevectorBackend())
        for left, right in zip(batched, per_request):
            assert left.mixed_loss == right.mixed_loss
            np.testing.assert_array_equal(left.parameters, right.parameters)

    def test_mismatched_noise_models_fall_back_to_per_request(self):
        estimator = DensityMatrixEstimator(NOISY, seed=0)
        other = DensityMatrixBackend(get_backend_profile("hanoi").to_noise_model())
        scheduler = RoundScheduler(other, estimator)
        records = _run_rounds(scheduler, _make_clusters(estimator, num_tasks=2), rounds=1)
        assert records
        # Correctness first: the mismatched backend was never dispatched.
        assert scheduler.batches_executed == 0
        assert other.batches_run == 0

    def test_exact_estimator_never_consumes_noisy_backend_payloads(self):
        # An estimator without a requires_backend pin has exact pure-state
        # physics; a noise-applying backend must not silently feed it noisy
        # term vectors.  Per-request fallback keeps the values exact.
        from repro.quantum import ExactEstimator

        estimator = ExactEstimator(seed=0)
        backend = DensityMatrixBackend(NOISY)
        scheduler = RoundScheduler(backend, estimator)
        clusters = _make_clusters(estimator, num_tasks=2, seed=3)
        records = _run_rounds(scheduler, clusters, rounds=1)
        assert scheduler.batches_executed == 0
        assert backend.batches_run == 0
        # Reference: the same seeded workload through the exact pure path.
        reference_estimator = ExactEstimator(seed=0)
        reference = _run_rounds(
            RoundScheduler(StatevectorBackend(), reference_estimator),
            _make_clusters(reference_estimator, num_tasks=2, seed=3),
            rounds=1,
        )
        for left, right in zip(records, reference):
            assert left.mixed_loss == right.mixed_loss

    def test_noiseless_density_backend_may_serve_exact_estimators(self):
        from repro.quantum import ExactEstimator

        estimator = ExactEstimator(seed=0)
        scheduler = RoundScheduler(DensityMatrixBackend(NoiseModel()), estimator)
        _run_rounds(scheduler, _make_clusters(estimator, num_tasks=2, seed=4), rounds=1)
        assert scheduler.batches_executed > 0

    def test_states_consuming_estimator_falls_back_instead_of_crashing(self):
        # SamplingEstimator needs prepared states, which a mixed-state backend
        # cannot attach — the round must fall back per-request, not raise.
        from repro.quantum import SamplingEstimator

        estimator = SamplingEstimator(shots_per_term=64, seed=0)
        backend = DensityMatrixBackend(NoiseModel())
        scheduler = RoundScheduler(backend, estimator)
        records = _run_rounds(scheduler, _make_clusters(estimator, num_tasks=2), rounds=1)
        assert records
        assert scheduler.batches_executed == 0
        assert backend.batches_run == 0


class TestControllerNoisyParity:
    def test_batched_controller_reproduces_per_request_trajectories(self):
        tasks = [
            VQATask(
                name=f"tfim@{field:.2f}",
                hamiltonian=transverse_field_ising_chain(4, field),
                scan_parameter=field,
            )
            for field in (0.8, 1.0, 1.2)
        ]
        ansatz = HardwareEfficientAnsatz(4, num_layers=1)
        batched_config = TreeVQAConfig(
            max_rounds=4, warmup_iterations=0, window_size=2,
            disable_automatic_splits=True, seed=5,
            backend="density_matrix", estimator="density_matrix", noise_model=NOISY,
        )
        per_request_config = dataclasses.replace(batched_config, backend="statevector")
        batched = TreeVQAController(tasks, ansatz, batched_config).run()
        per_request = TreeVQAController(tasks, ansatz, per_request_config).run()
        for task in tasks:
            assert (
                batched.trajectories[task.name].energies
                == per_request.trajectories[task.name].energies
            )
        assert batched.ledger.total == per_request.ledger.total

    def test_config_wires_one_noise_model_to_backend_and_estimator(self):
        config = TreeVQAConfig(
            backend="density_matrix", estimator="density_matrix", noise_profile="cairo"
        )
        backend = config.make_backend()
        estimator = config.make_estimator()
        assert isinstance(backend, DensityMatrixBackend)
        assert isinstance(estimator, DensityMatrixEstimator)
        assert backend.noise_model == estimator.noise_model
        assert backend.noise_model.name == "cairo"


class TestErrorPaths:
    def test_qubit_guard_at_backend_construction(self):
        with pytest.raises(ValueError, match="limited to 12 qubits"):
            DensityMatrixBackend(NOISY, num_qubits=13)

    def test_qubit_guard_before_evolution(self):
        circuit = QuantumCircuit(13).h(0)
        operator = PauliOperator.from_terms([("Z" + "I" * 12, 1.0)])
        with pytest.raises(ValueError, match="13 qubits"):
            DensityMatrixBackend(NOISY).run_batch([ExecutionRequest(circuit, operator)])

    @pytest.mark.parametrize(
        "overrides",
        [
            {"backend": "density_matrix", "estimator": "density_matrix"},
            # The per-request path (statevector backend, density estimator)
            # must fail at wiring time too, not at the first 2^n allocation.
            {"backend": "statevector", "estimator": "density_matrix"},
        ],
    )
    def test_cluster_rejects_oversized_density_matrix_wiring(self, overrides):
        config = TreeVQAConfig(noise_model=NOISY, **overrides)
        ansatz = HardwareEfficientAnsatz(13, num_layers=1)
        task = VQATask(
            name="too-wide",
            hamiltonian=transverse_field_ising_chain(13, 1.0),
            scan_parameter=0.0,
        )
        with pytest.raises(ValueError, match="statevector"):
            VQACluster(
                cluster_id="c0",
                tasks=[task],
                ansatz=ansatz,
                optimizer=config.make_optimizer(),
                estimator=config.make_estimator(),
                config=config,
                initial_parameters=ansatz.zero_parameters(),
            )

    def test_estimator_guards_width_before_allocation(self):
        circuit = QuantumCircuit(13).h(0)
        operator = PauliOperator.from_terms([("Z" + "I" * 12, 1.0)])
        with pytest.raises(ValueError, match="limited to 12 qubits"):
            DensityMatrixEstimator(NOISY).estimate(circuit, operator)

    def test_need_states_rejected(self):
        requests = _requests(batch=1, seed=6)
        with pytest.raises(ValueError, match="need_states"):
            DensityMatrixBackend(NOISY).run_batch(requests, need_states=True)

    def test_estimator_rejects_foreign_backend_result(self):
        requests = _requests(batch=1, seed=7)
        pure_result = StatevectorBackend().run_batch(requests)[0]
        estimator = DensityMatrixEstimator(NOISY)
        with pytest.raises(ValueError, match="density_matrix"):
            estimator.estimate_backend_result(pure_result, requests[0].operator)

    def test_noise_model_rejected_by_unitary_backends(self):
        with pytest.raises(ValueError, match="noise model"):
            make_execution_backend("statevector", noise_model=NOISY)
        backend = make_execution_backend("density_matrix", noise_model=NOISY)
        assert isinstance(backend, DensityMatrixBackend)
        assert backend.noise_model == NOISY

    def test_config_rejects_conflicting_or_unknown_noise_settings(self):
        with pytest.raises(ValueError, match="not both"):
            TreeVQAConfig(
                backend="density_matrix", estimator="density_matrix",
                noise_model=NOISY, noise_profile="hanoi",
            )
        with pytest.raises(ValueError, match="hanoi"):
            TreeVQAConfig(
                backend="density_matrix", estimator="density_matrix",
                noise_profile="brisbane",
            )

    def test_config_rejects_noise_knobs_nothing_consumes(self):
        # Only the density-matrix estimator consumes the noise model; any
        # other estimator pairing would silently run noiseless — rejected at
        # configuration time instead.
        with pytest.raises(ValueError, match="no effect"):
            TreeVQAConfig(noise_profile="hanoi")
        with pytest.raises(ValueError, match="density_matrix"):
            TreeVQAConfig(noise_model=NOISY, estimator="exact")
        # A noisy backend alone is not enough: the scheduler keeps noisy
        # payloads away from exact estimators, so that run is noiseless too.
        with pytest.raises(ValueError, match="estimator"):
            TreeVQAConfig(
                backend="density_matrix", estimator="exact", noise_profile="hanoi"
            )
        # A density-matrix estimator (or a trusted factory) makes it valid.
        TreeVQAConfig(estimator="density_matrix", noise_profile="hanoi")
        TreeVQAConfig(
            noise_model=NOISY,
            estimator_factory=lambda: DensityMatrixEstimator(NOISY),
        )
