"""Tests for the execution backends: batching parity and Clifford dispatch."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.ansatz import HardwareEfficientAnsatz
from repro.quantum import (
    CliffordBackend,
    ExecutionRequest,
    Parameter,
    PauliOperator,
    QuantumCircuit,
    Statevector,
    StatevectorBackend,
    clear_program_cache,
    compile_circuit_program,
    make_execution_backend,
    program_cache_stats,
    program_for_bound_circuit,
    set_program_cache_limit,
)
from repro.quantum.engine import compiled_pauli_operator
from repro.quantum.sampling import ExactEstimator, ShotNoiseEstimator


def _random_operator(num_qubits: int, num_terms: int, seed: int) -> PauliOperator:
    rng = np.random.default_rng(seed)
    labels = set()
    while len(labels) < num_terms:
        labels.add("".join(rng.choice(list("IXYZ"), size=num_qubits)))
    return PauliOperator(num_qubits, dict(zip(sorted(labels), rng.normal(size=num_terms))))


def _legacy_term_vector(circuit, operator, initial_state):
    """The per-request path the backends replace: evolve + engine."""
    state = (initial_state or Statevector.zero_state(circuit.num_qubits)).evolve(circuit)
    engine = compiled_pauli_operator(operator)
    vector = engine.expectation_values(state)
    vector[engine.identity_mask] = 1.0
    return vector


def _requests(num_qubits=4, batch=6, seed=0, clifford_angles=False):
    rng = np.random.default_rng(seed)
    ansatz = HardwareEfficientAnsatz(num_qubits, num_layers=2)
    operator = _random_operator(num_qubits, 8, seed)
    requests = []
    for _ in range(batch):
        if clifford_angles:
            params = (math.pi / 2) * rng.integers(0, 4, size=ansatz.num_parameters)
        else:
            params = rng.normal(0.0, 0.7, size=ansatz.num_parameters)
        requests.append(
            ExecutionRequest(
                circuit=ansatz.bound_circuit(params),
                operator=operator,
                initial_state=Statevector.zero_state(num_qubits),
            )
        )
    return requests


class TestStatevectorBackend:
    def test_batched_matches_per_request_path(self):
        requests = _requests()
        results = StatevectorBackend().run_batch(requests)
        for request, result in zip(requests, results):
            expected = _legacy_term_vector(
                request.circuit, request.operator, request.initial_state
            )
            np.testing.assert_allclose(result.term_vector, expected, rtol=0, atol=1e-12)
            assert result.backend_name == "statevector"
            assert result.term_basis == tuple(request.operator.paulis())

    def test_batching_is_grouping_invariant(self):
        # The acceptance contract: stacked execution is bit-identical to
        # one-request-at-a-time execution, so batch composition never shows
        # up in the numbers.
        backend = StatevectorBackend()
        requests = _requests(batch=8, seed=3)
        together = backend.run_batch(requests)
        alone = [backend.run_batch([request])[0] for request in requests]
        for batched, single in zip(together, alone):
            np.testing.assert_array_equal(batched.term_vector, single.term_vector)

    def test_mixed_circuit_structures_in_one_batch(self):
        shallow = HardwareEfficientAnsatz(3, num_layers=1)
        deep = HardwareEfficientAnsatz(3, num_layers=3)
        operator = _random_operator(3, 5, seed=1)
        rng = np.random.default_rng(1)
        requests = [
            ExecutionRequest(ansatz.bound_circuit(rng.normal(size=ansatz.num_parameters)), operator)
            for ansatz in (shallow, deep, shallow, deep)
        ]
        results = StatevectorBackend().run_batch(requests)
        for request, result in zip(requests, results):
            expected = _legacy_term_vector(request.circuit, request.operator, None)
            np.testing.assert_allclose(result.term_vector, expected, rtol=0, atol=1e-12)

    def test_initial_bitstring_without_dense_state(self):
        circuit = QuantumCircuit(3).h(0).cx(0, 1)
        operator = PauliOperator.from_terms([("ZZI", 1.0), ("IIZ", 1.0)])
        result = StatevectorBackend().run_batch(
            [ExecutionRequest(circuit, operator, initial_bitstring="001")]
        )[0]
        # Qubit 2 starts in |1>: <IIZ> = -1; the Bell pair on 0,1 gives <ZZI> = 1.
        np.testing.assert_allclose(result.term_vector, [1.0, -1.0], atol=1e-12)

    def test_states_attached_on_demand(self):
        requests = _requests(batch=2)
        backend = StatevectorBackend()
        without = backend.run_batch(requests)
        with_states = backend.run_batch(requests, need_states=True)
        assert all(result.state is None for result in without)
        for request, result in zip(requests, with_states):
            expected = request.initial_state.evolve(request.circuit)
            assert result.state is not None
            np.testing.assert_array_equal(result.state.data, expected.data)

    def test_unbound_circuit_rejected(self):
        ansatz = HardwareEfficientAnsatz(2, num_layers=1)
        operator = _random_operator(2, 3, seed=0)
        with pytest.raises(ValueError):
            StatevectorBackend().run_batch([ExecutionRequest(ansatz.circuit, operator)])


def _program_requests(ansatz, operator, points, **kwargs):
    program = compile_circuit_program(ansatz.circuit)
    return [
        ExecutionRequest(None, operator, program=program, parameters=point, **kwargs)
        for point in points
    ]


class TestCircuitProgram:
    """The tentpole contract: the program path reproduces the legacy
    bound-circuit path bit-for-bit, grouping-independently."""

    def test_program_path_bit_identical_to_bound_circuit_path(self):
        ansatz = HardwareEfficientAnsatz(4, num_layers=2)
        operator = _random_operator(4, 8, seed=0)
        rng = np.random.default_rng(0)
        points = [rng.normal(0.0, 0.7, ansatz.num_parameters) for _ in range(6)]
        via_programs = StatevectorBackend().run_batch(
            _program_requests(ansatz, operator, points), need_states=True
        )
        via_circuits = StatevectorBackend().run_batch(
            [ExecutionRequest(ansatz.bound_circuit(p), operator) for p in points],
            need_states=True,
        )
        for point, left, right in zip(points, via_programs, via_circuits):
            np.testing.assert_array_equal(left.term_vector, right.term_vector)
            np.testing.assert_array_equal(left.state.data, right.state.data)
            sequential = Statevector.zero_state(4).evolve(ansatz.bound_circuit(point))
            np.testing.assert_array_equal(left.state.data, sequential.data)

    def test_program_grouping_invariant(self):
        ansatz = HardwareEfficientAnsatz(3, num_layers=2)
        operator = _random_operator(3, 6, seed=1)
        rng = np.random.default_rng(1)
        points = [rng.normal(size=ansatz.num_parameters) for _ in range(5)]
        requests = _program_requests(ansatz, operator, points)
        backend = StatevectorBackend()
        together = backend.run_batch(requests)
        alone = [backend.run_batch([request])[0] for request in requests]
        for batched, single in zip(together, alone):
            np.testing.assert_array_equal(batched.term_vector, single.term_vector)

    def test_affine_parameter_expressions_bit_identical(self):
        # QAOA-style circuit: shared parameters entering several gates through
        # scale/offset expressions.
        gamma, beta = Parameter("gamma"), Parameter("beta")
        circuit = QuantumCircuit(3)
        circuit.h(0).h(1).h(2)
        circuit.rzz(2.0 * gamma, 0, 1).rzz(2.0 * gamma, 1, 2)
        circuit.rx(2.0 * beta, 0).rx(beta + 0.25, 1).rx(-beta, 2)
        operator = _random_operator(3, 5, seed=2)
        program = compile_circuit_program(circuit)
        assert program.num_parameters == 2
        rng = np.random.default_rng(2)
        points = [rng.normal(size=2) for _ in range(4)]
        via_programs = StatevectorBackend().run_batch(
            [
                ExecutionRequest(None, operator, program=program, parameters=p)
                for p in points
            ],
            need_states=True,
        )
        for point, result in zip(points, via_programs):
            sequential = Statevector.zero_state(3).evolve(circuit.bind(point))
            np.testing.assert_array_equal(result.state.data, sequential.data)

    def test_mixed_program_and_circuit_requests_in_one_batch(self):
        shallow = HardwareEfficientAnsatz(3, num_layers=1)
        deep = HardwareEfficientAnsatz(3, num_layers=3)
        operator = _random_operator(3, 5, seed=3)
        rng = np.random.default_rng(3)
        requests = []
        for ansatz in (shallow, deep):
            point = rng.normal(size=ansatz.num_parameters)
            requests.extend(_program_requests(ansatz, operator, [point]))
            requests.append(
                ExecutionRequest(
                    ansatz.bound_circuit(rng.normal(size=ansatz.num_parameters)),
                    operator,
                )
            )
        results = StatevectorBackend().run_batch(requests, need_states=True)
        for request, result in zip(requests, results):
            expected = _legacy_term_vector(request.resolve_circuit(), operator, None)
            np.testing.assert_allclose(result.term_vector, expected, rtol=0, atol=1e-12)

    def test_persistent_cache_shared_across_ansatz_instances(self):
        clear_program_cache()
        first = compile_circuit_program(HardwareEfficientAnsatz(3, num_layers=2).circuit)
        second = compile_circuit_program(HardwareEfficientAnsatz(3, num_layers=2).circuit)
        assert first is second  # structurally identical circuits share one program
        stats = program_cache_stats()
        assert stats["misses"] == 1 and stats["hits"] == 1

    def test_bound_circuits_compiled_on_first_sight(self):
        clear_program_cache()
        ansatz = HardwareEfficientAnsatz(3, num_layers=1)
        operator = _random_operator(3, 4, seed=4)
        rng = np.random.default_rng(4)
        backend = StatevectorBackend()
        for _ in range(3):
            backend.run_batch(
                [
                    ExecutionRequest(
                        ansatz.bound_circuit(rng.normal(size=ansatz.num_parameters)),
                        operator,
                    )
                    for _ in range(2)
                ]
            )
        stats = program_cache_stats()
        # One structure: compiled once, every later request is a cache hit.
        assert stats["misses"] == 1
        assert stats["hits"] == 5
        assert backend.program_requests == 0

    def test_cache_lru_eviction_and_limit(self):
        clear_program_cache()
        set_program_cache_limit(1)
        try:
            compile_circuit_program(HardwareEfficientAnsatz(2, num_layers=1).circuit)
            compile_circuit_program(HardwareEfficientAnsatz(2, num_layers=2).circuit)
            stats = program_cache_stats()
            assert stats["size"] == 1
            assert stats["evictions"] == 1
            with pytest.raises(ValueError):
                set_program_cache_limit(0)
        finally:
            set_program_cache_limit(256)

    def test_program_bind_matches_circuit_bind(self):
        ansatz = HardwareEfficientAnsatz(3, num_layers=2)
        program = compile_circuit_program(ansatz.circuit)
        point = np.random.default_rng(5).normal(size=ansatz.num_parameters)
        bound = ansatz.bound_circuit(point)
        materialised = program.bind(point)
        assert [
            (inst.gate, inst.qubits, inst.params) for inst in bound.instructions
        ] == [
            (inst.gate, inst.qubits, inst.params) for inst in materialised.instructions
        ]

    def test_bound_structure_programs_group_across_angles(self):
        ansatz = HardwareEfficientAnsatz(3, num_layers=1)
        rng = np.random.default_rng(6)
        first, row_first = program_for_bound_circuit(
            ansatz.bound_circuit(rng.normal(size=ansatz.num_parameters))
        )
        second, row_second = program_for_bound_circuit(
            ansatz.bound_circuit(rng.normal(size=ansatz.num_parameters))
        )
        assert first is second  # same structure, different angles: one program
        assert not np.array_equal(row_first, row_second)
        with pytest.raises(ValueError):
            program_for_bound_circuit(ansatz.circuit)  # still parameterized

    def test_request_validation(self):
        ansatz = HardwareEfficientAnsatz(2, num_layers=1)
        operator = _random_operator(2, 3, seed=7)
        program = compile_circuit_program(ansatz.circuit)
        point = np.zeros(ansatz.num_parameters)
        with pytest.raises(ValueError):
            ExecutionRequest(None, operator)  # neither circuit nor program
        with pytest.raises(ValueError):
            ExecutionRequest(
                ansatz.bound_circuit(point), operator, program=program, parameters=point
            )  # both
        with pytest.raises(ValueError):
            ExecutionRequest(None, operator, program=program)  # missing parameters
        with pytest.raises(ValueError):
            ExecutionRequest(None, operator, program=program, parameters=np.zeros(3))
        with pytest.raises(ValueError):
            ExecutionRequest(ansatz.bound_circuit(point), operator, parameters=point)


class TestCliffordBackend:
    def test_clifford_angles_route_to_stabilizer_simulator(self):
        backend = CliffordBackend()
        requests = _requests(clifford_angles=True, batch=4, seed=2)
        results = backend.run_batch(requests)
        assert backend.clifford_requests == 4
        assert backend.fallback_requests == 0
        assert all(result.backend_name == "clifford" for result in results)

    def test_non_clifford_angles_fall_back(self):
        backend = CliffordBackend()
        mixed = _requests(clifford_angles=True, batch=2, seed=4) + _requests(
            clifford_angles=False, batch=2, seed=5
        )
        results = backend.run_batch(mixed)
        assert backend.clifford_requests == 2
        assert backend.fallback_requests == 2
        assert [result.backend_name for result in results] == [
            "clifford", "clifford", "statevector", "statevector",
        ]

    def test_three_way_parity_on_clifford_circuits(self):
        # Random Clifford-angle circuits must agree across the stabilizer
        # backend, the dense batched backend, and the per-request legacy path.
        requests = _requests(clifford_angles=True, batch=6, seed=6)
        clifford = CliffordBackend().run_batch(requests)
        dense = StatevectorBackend().run_batch(requests)
        for request, stab, dns in zip(requests, clifford, dense):
            legacy = _legacy_term_vector(
                request.circuit, request.operator, request.initial_state
            )
            np.testing.assert_allclose(stab.term_vector, legacy, atol=1e-9)
            np.testing.assert_allclose(dns.term_vector, legacy, atol=1e-9)

    def test_nonzero_initial_bitstring(self):
        circuit = QuantumCircuit(3).cx(0, 1)
        operator = PauliOperator.from_terms([("ZII", 1.0), ("IZI", 1.0), ("IIZ", 1.0)])
        backend = CliffordBackend()
        result = backend.run_batch(
            [ExecutionRequest(circuit, operator, initial_bitstring="101")]
        )[0]
        assert backend.clifford_requests == 1
        # |101> -> CX(0,1) -> |111>: every Z expectation is -1.
        np.testing.assert_allclose(result.term_vector, [-1.0, -1.0, -1.0])

    @pytest.mark.parametrize("phase", [-1.0, 1j, np.exp(0.25j)])
    def test_phase_shifted_basis_state_routes_to_stabilizer(self, phase):
        # Regression: a basis state carrying a global phase (e.g. amplitude −1
        # after an evolved preparation) used to fail the exact `== 1.0` check
        # and silently fall back to dense simulation.  Pauli expectations are
        # phase-invariant, so these states are stabilizer-safe.
        circuit = QuantumCircuit(3).cx(0, 1)
        operator = PauliOperator.from_terms([("ZII", 1.0), ("IZI", 1.0), ("IIZ", 1.0)])
        amplitudes = np.zeros(8, dtype=complex)
        amplitudes[0b101] = phase
        backend = CliffordBackend()
        result = backend.run_batch(
            [ExecutionRequest(circuit, operator, initial_state=Statevector(amplitudes))]
        )[0]
        assert backend.clifford_requests == 1
        assert backend.fallback_requests == 0
        # |101> -> CX(0,1) -> |111>: every Z expectation is -1, phase or not.
        np.testing.assert_allclose(result.term_vector, [-1.0, -1.0, -1.0])

    def test_subnormalised_single_amplitude_still_falls_back(self):
        # A lone amplitude that is not unit-modulus is not a basis state.
        circuit = QuantumCircuit(2).cx(0, 1)
        operator = PauliOperator.from_terms([("ZZ", 1.0)])
        amplitudes = np.zeros(4, dtype=complex)
        amplitudes[2] = 0.5
        backend = CliffordBackend()
        backend.run_batch(
            [ExecutionRequest(circuit, operator, initial_state=Statevector(amplitudes))]
        )
        assert backend.clifford_requests == 0
        assert backend.fallback_requests == 1

    def test_program_requests_route_through_stabilizer(self):
        ansatz = HardwareEfficientAnsatz(4, num_layers=2)
        operator = _random_operator(4, 8, seed=11)
        rng = np.random.default_rng(11)
        points = [
            (math.pi / 2) * rng.integers(0, 4, size=ansatz.num_parameters).astype(float)
            for _ in range(3)
        ]
        backend = CliffordBackend()
        results = backend.run_batch(_program_requests(ansatz, operator, points))
        assert backend.clifford_requests == 3
        assert backend.fallback_requests == 0
        for point, result in zip(points, results):
            legacy = _legacy_term_vector(ansatz.bound_circuit(point), operator, None)
            np.testing.assert_allclose(result.term_vector, legacy, atol=1e-9)

    def test_program_requests_with_generic_angles_fall_back(self):
        ansatz = HardwareEfficientAnsatz(3, num_layers=1)
        operator = _random_operator(3, 5, seed=12)
        rng = np.random.default_rng(12)
        points = [rng.normal(size=ansatz.num_parameters) for _ in range(2)]
        backend = CliffordBackend()
        results = backend.run_batch(_program_requests(ansatz, operator, points))
        assert backend.clifford_requests == 0
        assert backend.fallback_requests == 2
        assert all(result.backend_name == "statevector" for result in results)

    def test_superposition_initial_state_falls_back(self):
        circuit = QuantumCircuit(2).cx(0, 1)
        operator = PauliOperator.from_terms([("ZZ", 1.0)])
        plus = Statevector(np.full(4, 0.5))
        backend = CliffordBackend()
        backend.run_batch([ExecutionRequest(circuit, operator, initial_state=plus)])
        assert backend.clifford_requests == 0
        assert backend.fallback_requests == 1

    def test_need_states_forces_dense_execution(self):
        backend = CliffordBackend()
        requests = _requests(clifford_angles=True, batch=2, seed=7)
        results = backend.run_batch(requests, need_states=True)
        assert backend.clifford_requests == 0
        assert all(result.state is not None for result in results)


class TestEstimatorBackendResults:
    def test_exact_estimator_matches_legacy_estimate(self):
        requests = _requests(batch=3, seed=8)
        backend_results = StatevectorBackend().run_batch(requests)
        from_backend = ExactEstimator(seed=0)
        legacy = ExactEstimator(seed=0)
        for request, backend_result in zip(requests, backend_results):
            via_backend = from_backend.estimate_backend_result(
                backend_result, request.operator
            )
            direct = legacy.estimate(request.circuit, request.operator, request.initial_state)
            assert via_backend.value == direct.value
            assert via_backend.shots_used == direct.shots_used
            np.testing.assert_array_equal(via_backend.term_vector, direct.term_vector)
        assert from_backend.total_shots == legacy.total_shots
        assert from_backend.total_evaluations == legacy.total_evaluations

    def test_shot_noise_estimator_consumes_term_vectors(self):
        requests = _requests(batch=2, seed=9)
        backend_results = StatevectorBackend().run_batch(requests)
        estimator = ShotNoiseEstimator(shots_per_term=256, seed=1)
        result = estimator.estimate_backend_result(backend_results[0], requests[0].operator)
        assert result.variance > 0
        assert estimator.total_evaluations == 1

    def test_estimator_without_payload_raises(self):
        requests = _requests(clifford_angles=True, batch=1, seed=10)
        clifford_result = CliffordBackend().run_batch(requests)[0]

        class ScalarOnly(ExactEstimator):
            consumes_term_vectors = False

        with pytest.raises(ValueError):
            ScalarOnly().estimate_backend_result(clifford_result, requests[0].operator)


def test_make_execution_backend_registry():
    assert isinstance(make_execution_backend("statevector"), StatevectorBackend)
    assert isinstance(make_execution_backend("clifford"), CliffordBackend)
    with pytest.raises(ValueError):
        make_execution_backend("tensor-network")
