"""Measurement-plan unit and property tests.

The compile-once :class:`~repro.quantum.measurement.MeasurementPlan` must be
a pure refactor of the legacy per-group sampling loop: identical rotated
probabilities (bit-for-bit, via the batched gate kernel), identical sign
evaluation (mask parity vs. the bit-table product), identical shot
accounting — plus the new guarantees: the vectorized inverse-CDF sampler,
the normalization guard, and the persistent LRU plan cache with stats.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantum.measurement import (
    NORMALIZATION_ATOL,
    MeasurementPlan,
    basis_rotation_circuit,
    clear_measurement_plan_cache,
    measurement_basis,
    measurement_plan_cache_stats,
    measurement_plan_for,
    sample_outcomes,
    set_measurement_plan_cache_limit,
)
from repro.quantum.pauli import PauliOperator
from repro.quantum.sampling import SamplingEstimator, _bit_table
from repro.quantum.statevector import Statevector

# -- strategies ------------------------------------------------------------------


@st.composite
def _operators(draw):
    num_qubits = draw(st.integers(min_value=1, max_value=4))
    labels = draw(
        st.lists(
            st.text(alphabet="IXYZ", min_size=num_qubits, max_size=num_qubits),
            min_size=1,
            max_size=8,
            unique=True,
        )
    )
    coefficients = draw(
        st.lists(
            st.floats(min_value=-2.0, max_value=2.0, allow_nan=False),
            min_size=len(labels),
            max_size=len(labels),
        )
    )
    return PauliOperator.from_terms(
        list(zip(labels, coefficients)), num_qubits=num_qubits
    )


def _random_state(num_qubits: int, seed: int) -> Statevector:
    rng = np.random.default_rng(seed)
    amplitudes = rng.normal(size=1 << num_qubits) + 1j * rng.normal(size=1 << num_qubits)
    return Statevector(amplitudes / np.linalg.norm(amplitudes))


def _legacy_group_values(plan, group, outcomes: np.ndarray) -> np.ndarray:
    """The pre-plan sign evaluation: per-qubit bit-table product per term."""
    bit_table = _bit_table(outcomes, plan.num_qubits)
    values = []
    for term_index in group.term_indices:
        signs = np.ones(len(outcomes))
        for qubit in plan.paulis[term_index].support():
            signs *= 1.0 - 2.0 * bit_table[:, qubit]
        values.append(signs.mean())
    return np.array(values)


# -- plan vs. legacy loop --------------------------------------------------------


class TestPlanMatchesLegacyLoop:
    @given(operator=_operators(), seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=60, deadline=None)
    def test_rotations_and_signs_match_legacy_per_group_loop(self, operator, seed):
        plan = MeasurementPlan(operator)
        state = _random_state(operator.num_qubits, seed)
        stacked = state.data.reshape(1, -1)
        rng = np.random.default_rng(seed)
        for group in plan.groups:
            probabilities = plan.group_probabilities(stacked, group)[0]
            rotated = state.evolve(basis_rotation_circuit(list(group.basis)))
            # Bit-identical to the legacy evolve path (the PR 2 invariant).
            np.testing.assert_array_equal(probabilities, rotated.probabilities())
            outcomes = rng.integers(0, probabilities.size, size=48)
            np.testing.assert_array_equal(
                plan.group_term_values(group, outcomes[None, :])[0],
                _legacy_group_values(plan, group, outcomes),
            )

    @given(operator=_operators(), seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=30, deadline=None)
    def test_term_matrix_covers_every_term(self, operator, seed):
        plan = MeasurementPlan(operator)
        state = _random_state(operator.num_qubits, seed)
        matrix = plan.term_matrix(
            state.data.reshape(1, -1), 32, [np.random.default_rng(seed)]
        )
        assert matrix.shape == (1, len(plan.paulis))
        for index, pauli in enumerate(plan.paulis):
            if pauli.is_identity:
                assert matrix[0, index] == 1.0
            else:
                assert -1.0 <= matrix[0, index] <= 1.0

    def test_group_structure(self):
        operator = PauliOperator.from_terms(
            [("XI", 0.5), ("ZZ", 1.0), ("ZI", -0.25), ("II", 2.0)]
        )
        plan = measurement_plan_for(operator)
        assert plan.num_terms == 4
        # ZZ and ZI are qubit-wise commuting; XI needs its own X-basis group.
        assert plan.num_groups == 2
        assert plan.shots_used(100) == 200
        bases = {group.basis for group in plan.groups}
        assert bases == {("Z", "Z"), ("X", "I")}
        np.testing.assert_array_equal(plan.identity_mask, [False, False, False, True])
        # Support masks are MSB-first: ZI on 2 qubits is bit 0b10.
        (zz_group,) = [g for g in plan.groups if g.basis == ("Z", "Z")]
        mask_by_term = dict(zip(zz_group.term_indices, zz_group.support_masks))
        assert mask_by_term == {1: 0b11, 2: 0b10}

    def test_identity_only_operator_samples_nothing(self):
        plan = MeasurementPlan(PauliOperator.from_terms([("II", 3.0)]))
        assert plan.num_groups == 0
        assert plan.shots_used(64) == 64  # legacy floor: one block minimum
        matrix = plan.term_matrix(
            np.array([[1.0, 0, 0, 0]], dtype=complex), 64, [np.random.default_rng(0)]
        )
        np.testing.assert_array_equal(matrix, [[1.0]])

    def test_non_commuting_basis_rejected(self):
        with pytest.raises(ValueError, match="commuting"):
            measurement_basis(
                [PauliOperator.from_terms([("X", 1.0)]).paulis()[0],
                 PauliOperator.from_terms([("Z", 1.0)]).paulis()[0]]
            )


# -- vectorized sampling helper --------------------------------------------------


class TestSampleOutcomes:
    def test_inverse_cdf_is_deterministic_in_the_uniforms(self):
        probabilities = np.array([[0.0, 0.5, 0.0, 0.5]])
        uniforms = np.array([[0.0, 0.25, 0.499, 0.5, 0.75, 0.999]])
        np.testing.assert_array_equal(
            sample_outcomes(probabilities, uniforms), [[1, 1, 1, 3, 3, 3]]
        )

    def test_rows_are_independent(self):
        probabilities = np.array([[1.0, 0.0], [0.0, 1.0]])
        uniforms = np.full((2, 5), 0.5)
        np.testing.assert_array_equal(
            sample_outcomes(probabilities, uniforms),
            [[0] * 5, [1] * 5],
        )

    def test_outcomes_stay_in_range_at_the_edges(self):
        rng = np.random.default_rng(0)
        probabilities = rng.random((3, 8))
        outcomes = sample_outcomes(probabilities, np.full((3, 4), 1.0 - 1e-16))
        assert outcomes.max() <= 7

    def test_row_totals_scale_like_renormalization(self):
        # Scaling uniforms by the row total must pick the same outcomes as
        # dividing the probabilities — the drift absorption contract.
        rng = np.random.default_rng(1)
        raw = rng.random((2, 16))
        uniforms = rng.random((2, 64))
        np.testing.assert_array_equal(
            sample_outcomes(raw, uniforms),
            sample_outcomes(raw / raw.sum(axis=1, keepdims=True), uniforms),
        )


def test_bit_table_matches_per_column_loop():
    outcomes = np.array([0, 1, 5, 7, 6], dtype=np.int64)
    table = _bit_table(outcomes, 3)
    expected = np.zeros((5, 3))
    for column in range(3):
        expected[:, column] = (outcomes >> (2 - column)) & 1
    np.testing.assert_array_equal(table, expected)


# -- normalization guard ---------------------------------------------------------


class TestNormalizationGuard:
    def test_unnormalized_state_rejected_with_actionable_message(self):
        plan = MeasurementPlan(PauliOperator.from_terms([("Z", 1.0)]))
        bad = np.array([[1.0, 1.0]], dtype=complex)  # norm sqrt(2)
        with pytest.raises(ValueError, match="normalize"):
            plan.term_matrix(bad, 16, [np.random.default_rng(0)])

    def test_fp_drift_within_tolerance_is_absorbed(self):
        plan = MeasurementPlan(PauliOperator.from_terms([("Z", 1.0)]))
        drift = np.sqrt(1.0 + NORMALIZATION_ATOL / 4)
        amplitudes = np.array([[drift, 0.0]], dtype=complex)
        matrix = plan.term_matrix(amplitudes, 16, [np.random.default_rng(0)])
        np.testing.assert_array_equal(matrix, [[1.0]])


# -- plan cache ------------------------------------------------------------------


@pytest.fixture
def _fresh_plan_cache():
    clear_measurement_plan_cache()
    set_measurement_plan_cache_limit(2)
    yield
    set_measurement_plan_cache_limit(256)
    clear_measurement_plan_cache()


class TestPlanCache:
    def test_hits_misses_and_evictions(self, _fresh_plan_cache):
        operators = [
            PauliOperator.from_terms([("XX", 1.0)]),
            PauliOperator.from_terms([("YY", 1.0)]),
            PauliOperator.from_terms([("ZZ", 1.0)]),
        ]
        first = measurement_plan_for(operators[0])
        assert measurement_plan_for(operators[0]) is first
        stats = measurement_plan_cache_stats()
        assert (stats["hits"], stats["misses"], stats["evictions"]) == (1, 1, 0)
        measurement_plan_for(operators[1])
        measurement_plan_for(operators[2])  # evicts operators[0] (LRU, limit 2)
        stats = measurement_plan_cache_stats()
        assert stats["size"] == stats["limit"] == 2
        assert stats["evictions"] == 1
        assert measurement_plan_for(operators[0]) is not first
        assert measurement_plan_cache_stats()["misses"] == 4

    def test_interned_by_value_not_identity(self, _fresh_plan_cache):
        left = PauliOperator.from_terms([("XZ", 0.5), ("II", 1.0)])
        right = PauliOperator.from_terms([("XZ", 0.5), ("II", 1.0)])
        assert measurement_plan_for(left) is measurement_plan_for(right)
        changed = PauliOperator.from_terms([("XZ", 0.75), ("II", 1.0)])
        assert measurement_plan_for(changed) is not measurement_plan_for(left)

    def test_limit_validation(self):
        with pytest.raises(ValueError, match=">= 1"):
            set_measurement_plan_cache_limit(0)


# -- estimator accounting over plans ---------------------------------------------


class TestSamplingEstimatorAccounting:
    def test_empirical_variance_matches_formula(self):
        operator = PauliOperator.from_terms([("ZZ", 1.0), ("XI", 0.5), ("II", 2.0)])
        estimator = SamplingEstimator(shots_per_term=128, seed=3)
        state = _random_state(2, 9)
        result = estimator.estimate_state(state, operator)
        plan = measurement_plan_for(operator)
        expected = 0.0
        for coefficient, mean, identity in zip(
            plan.coefficients, result.term_vector, plan.identity_mask
        ):
            if not identity:
                expected += coefficient**2 * max(1.0 - mean**2, 0.0) / 128
        assert result.variance == pytest.approx(expected)
        assert result.variance > 0.0

    def test_shots_used_charges_per_sampled_group(self):
        operator = PauliOperator.from_terms([("ZZ", 1.0), ("XI", 0.5), ("IY", 0.5)])
        estimator = SamplingEstimator(shots_per_term=100, seed=0)
        result = estimator.estimate_state(_random_state(2, 1), operator)
        plan = measurement_plan_for(operator)
        assert result.shots_used == 100 * plan.num_groups
        assert estimator.total_shots == result.shots_used
